//! A one-permit baton used to hand execution between the scheduler thread
//! and process threads (and pool workers).
//!
//! Exactly one entity (the scheduler or one process) runs at any moment.
//! Handing the baton to a thread is `unpark`; giving it up is `park`. Each
//! entity has its own `Parker`, so a switch costs one `notify_one` plus one
//! condvar wait — O(1) regardless of how many processes exist.
//!
//! Because the receiving side is woken again almost immediately in a tight
//! handoff loop, `park` first spins for a bounded number of iterations
//! polling the permit before committing to the condvar wait. On a
//! multi-core host this skips the futex round-trip that dominates
//! small-rank wall-clock time; on a single-core host spinning only steals
//! cycles from the thread that would grant the permit, so the default spin
//! is zero there. The bound is configurable per parker
//! ([`Parker::set_spin`], surfaced as `Sim::set_handoff_spin`).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

use parking_lot::{Condvar, Mutex};

/// Default spin bound: a short bounded spin on multi-core machines, none
/// when there is no parallelism to spin against.
fn default_spin() -> u32 {
    static DEFAULT: OnceLock<u32> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if cores > 1 {
            64
        } else {
            0
        }
    })
}

/// A single-permit synchronization cell.
pub(crate) struct Parker {
    permit: Mutex<bool>,
    cv: Condvar,
    spin: AtomicU32,
}

impl Default for Parker {
    fn default() -> Self {
        Parker::new()
    }
}

impl Parker {
    pub(crate) fn new() -> Self {
        Parker {
            permit: Mutex::new(false),
            cv: Condvar::new(),
            spin: AtomicU32::new(default_spin()),
        }
    }

    /// Set the bounded spin performed before parking on the condvar
    /// (0 disables spinning).
    pub(crate) fn set_spin(&self, iters: u32) {
        self.spin.store(iters, Ordering::Relaxed);
    }

    /// Grant the permit, waking the owner if it is parked.
    pub(crate) fn unpark(&self) {
        let mut p = self.permit.lock();
        *p = true;
        self.cv.notify_one();
    }

    /// Block until the permit is granted, then consume it.
    pub(crate) fn park(&self) {
        // Bounded spin: poll the permit without waiting on the condvar.
        // Consuming under the lock keeps the permit a strict baton — a
        // spin-consume and a condvar-consume can never race into running
        // two entities at once.
        let spin = self.spin.load(Ordering::Relaxed);
        for _ in 0..spin {
            {
                let mut p = self.permit.lock();
                if *p {
                    *p = false;
                    return;
                }
            }
            std::hint::spin_loop();
        }
        let mut p = self.permit.lock();
        while !*p {
            self.cv.wait(&mut p);
        }
        *p = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn permit_granted_before_park_is_consumed() {
        let p = Parker::new();
        p.unpark();
        p.park(); // must not block
    }

    #[test]
    fn cross_thread_handoff() {
        let a = Arc::new(Parker::new());
        let b = a.clone();
        let t = std::thread::spawn(move || {
            b.park();
            42
        });
        a.unpark();
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn repeated_handoffs() {
        let ping = Arc::new(Parker::new());
        let pong = Arc::new(Parker::new());
        let (ping2, pong2) = (ping.clone(), pong.clone());
        let t = std::thread::spawn(move || {
            for _ in 0..100 {
                ping2.park();
                pong2.unpark();
            }
        });
        for _ in 0..100 {
            ping.unpark();
            pong.park();
        }
        t.join().unwrap();
    }

    #[test]
    fn contended_handoff_with_and_without_spin() {
        // The baton must stay a strict one-permit handoff at every spin
        // setting: 2000 ping-pongs per configuration, each side observing
        // strictly alternating turns. Exercises the spin-consume path
        // (large bound), the pure condvar path (0), and a bound small
        // enough that the spin usually expires mid-handoff (1).
        for spin in [0u32, 1, 4096] {
            let ping = Arc::new(Parker::new());
            let pong = Arc::new(Parker::new());
            ping.set_spin(spin);
            pong.set_spin(spin);
            let counter = Arc::new(Mutex::new(0u64));
            let (ping2, pong2, c2) = (ping.clone(), pong.clone(), counter.clone());
            let t = std::thread::spawn(move || {
                for i in 0..2000u64 {
                    ping2.park();
                    {
                        let mut c = c2.lock();
                        assert_eq!(*c, 2 * i, "spin={spin}: peer ran out of turn");
                        *c += 1;
                    }
                    pong2.unpark();
                }
            });
            for i in 0..2000u64 {
                ping.unpark();
                pong.park();
                let mut c = counter.lock();
                assert_eq!(*c, 2 * i + 1, "spin={spin}: main ran out of turn");
                *c += 1;
            }
            t.join().unwrap();
        }
    }

    #[test]
    fn spin_zero_never_consumes_spuriously() {
        let p = Parker::new();
        p.set_spin(0);
        p.unpark();
        p.park();
        // Second park must block until a fresh permit arrives.
        let a = Arc::new(Parker::new());
        a.set_spin(0);
        let b = a.clone();
        let t = std::thread::spawn(move || b.park());
        std::thread::sleep(std::time::Duration::from_millis(10));
        a.unpark();
        t.join().unwrap();
    }
}
