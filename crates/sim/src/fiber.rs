//! Stackful fibers: per-rank continuations parked as *state*, not threads.
//!
//! The pooled execution mode ([`crate::kernel::ExecMode::Pooled`]) runs each
//! simulated process on its own heap-allocated stack and switches between
//! that stack and the resumer (driver or pool worker) with a ~20-instruction
//! context switch — no syscalls, no condvars, no OS threads per rank. A
//! suspended rank costs one mmap'd stack whose untouched pages stay
//! non-resident, which is what makes 4096+ ranks per process feasible.
//!
//! # Context-switch contract (x86_64 SysV)
//!
//! [`switch_ctx`] saves the callee-saved registers (`rbp`, `rbx`,
//! `r12`–`r15`) plus the return address on the current stack, stores the
//! resulting `rsp` through its first argument, loads a new `rsp` from its
//! second, and returns on the restored stack. Caller-saved registers are
//! dead across any call boundary, so nothing else needs saving. The x87/SSE
//! control words are *not* switched: simulation code never changes rounding
//! modes, matching the default-environment assumption Rust code is compiled
//! under.
//!
//! A fresh fiber's stack is seeded with a fake saved context whose return
//! address is [`fiber_entry_trampoline`] and whose `r12` slot carries the
//! `FiberInner` pointer; the first resume therefore "returns" into the
//! trampoline, which normalizes the frame chain and calls [`fiber_entry`].
//! The entry runs the closure under `catch_unwind` (unwinding off the top
//! of a fiber stack would be undefined behaviour), marks the fiber
//! finished, and switches back to the resumer for the last time.
//!
//! # Safety model
//!
//! A fiber is resumed by exactly one thread at a time — the kernel's baton
//! discipline (one runnable entity per instant) guarantees it — and yields
//! are routed through a thread-local set by the resumer, so a fiber may
//! migrate between pool workers across suspensions but never while running.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};

/// Raw mmap FFI. `std` already links libc on every Linux target, so the
/// three symbols are declared directly instead of adding a crate the
/// offline build could not fetch.
mod sys {
    use std::ffi::c_void;

    unsafe extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
    }

    pub const PROT_NONE: i32 = 0;
    pub const PROT_READ: i32 = 1;
    pub const PROT_WRITE: i32 = 2;
    pub const MAP_PRIVATE: i32 = 0x02;
    pub const MAP_ANONYMOUS: i32 = 0x20;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
}

const PAGE: usize = 4096;

/// An mmap'd fiber stack with a `PROT_NONE` guard page at the low end.
///
/// `Vec<u8>` would be simpler but zero-fills the whole allocation, committing
/// every page up front; anonymous mmap keeps untouched pages non-resident so
/// thousands of mostly-idle ranks fit in a few MB of RSS.
struct Stack {
    base: *mut u8,
    len: usize,
}

impl Stack {
    fn new(usable: usize) -> Stack {
        // Round the usable region up to whole pages and add the guard page.
        let usable = usable.max(4 * PAGE).div_ceil(PAGE) * PAGE;
        let len = usable + PAGE;
        unsafe {
            let base = sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_PRIVATE | sys::MAP_ANONYMOUS,
                -1,
                0,
            );
            assert!(base != sys::MAP_FAILED, "fiber stack mmap failed");
            let rc = sys::mprotect(base, PAGE, sys::PROT_NONE);
            assert_eq!(rc, 0, "fiber guard-page mprotect failed");
            Stack { base: base.cast(), len }
        }
    }

    /// One past the highest usable byte; page-aligned, hence 16-aligned.
    fn top(&self) -> *mut u8 {
        unsafe { self.base.add(self.len) }
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        unsafe {
            sys::munmap(self.base.cast(), self.len);
        }
    }
}

/// Heap-pinned fiber state. `r12` in the seeded context points here, so the
/// allocation must never move — hence the `Box` in [`Fiber`].
struct FiberInner {
    /// Saved `rsp` of the fiber while it is suspended.
    fiber_rsp: usize,
    /// Saved `rsp` of the resumer while the fiber runs.
    resumer_rsp: usize,
    /// Set by [`fiber_entry`] when the closure has returned or unwound.
    finished: bool,
    /// The process body; taken on first entry.
    entry: Option<Box<dyn FnOnce() + Send + 'static>>,
    stack: Stack,
}

thread_local! {
    /// The fiber currently running on this thread, if any. Set by
    /// [`Fiber::resume`] for the duration of the slice; read by
    /// [`yield_current`] / [`on_fiber`] from inside the fiber.
    static CURRENT: Cell<*mut FiberInner> = const { Cell::new(std::ptr::null_mut()) };
}

/// Whether pooled (fiber) execution is available on this target.
pub(crate) const SUPPORTED: bool = true;

/// A suspended-or-running simulated process. See the module docs for the
/// execution and safety model.
pub(crate) struct Fiber {
    inner: Box<FiberInner>,
}

// SAFETY: a fiber is only ever touched by one thread at a time — the kernel
// hands execution around with a baton, and `resume` is the only entry point.
// The raw stack/rsp fields are plain data while suspended.
unsafe impl Send for Fiber {}

impl Fiber {
    /// Create a suspended fiber that will run `f` when first resumed.
    pub(crate) fn new(stack_size: usize, f: Box<dyn FnOnce() + Send + 'static>) -> Fiber {
        let stack = Stack::new(stack_size);
        let mut inner = Box::new(FiberInner {
            fiber_rsp: 0,
            resumer_rsp: 0,
            finished: false,
            entry: Some(f),
            stack,
        });
        let inner_ptr: *mut FiberInner = &mut *inner;
        unsafe {
            // Seed a fake saved context at the top of the stack, laid out
            // exactly as switch_ctx's pops expect (from rsp upward:
            // r15, r14, r13, r12, rbx, rbp, return address). After the pops
            // and the `ret`, execution starts in the trampoline with
            // rsp == top, i.e. 16-aligned — the SysV state at a call site.
            let top = inner.stack.top() as *mut usize;
            top.sub(1).write(fiber_entry_trampoline as *const () as usize); // ret target
            top.sub(2).write(0); // rbp
            top.sub(3).write(0); // rbx
            top.sub(4).write(inner_ptr as usize); // r12: FiberInner pointer
            top.sub(5).write(0); // r13
            top.sub(6).write(0); // r14
            top.sub(7).write(0); // r15
            inner.fiber_rsp = top.sub(7) as usize;
        }
        Fiber { inner }
    }

    /// Run the fiber until its next yield or until it finishes. Returns
    /// whether it finished. Must not be called on a finished fiber.
    pub(crate) fn resume(&mut self) -> bool {
        debug_assert!(!self.inner.finished, "resumed a finished fiber");
        let inner_ptr: *mut FiberInner = &mut *self.inner;
        let prev = CURRENT.replace(inner_ptr);
        unsafe {
            // SAFETY: fiber_rsp points into this fiber's live stack (seeded
            // at creation or saved at its last yield); exclusive access is
            // guaranteed by the kernel's baton discipline.
            switch_ctx(&mut self.inner.resumer_rsp, &self.inner.fiber_rsp);
        }
        CURRENT.set(prev);
        self.inner.finished
    }

    /// Whether the fiber's closure has returned or unwound.
    pub(crate) fn is_finished(&self) -> bool {
        self.inner.finished
    }
}

/// Whether the calling code is running inside a fiber slice.
pub(crate) fn on_fiber() -> bool {
    !CURRENT.get().is_null()
}

/// Suspend the current fiber, returning control to whoever resumed it.
/// Panics if called outside a fiber.
pub(crate) fn yield_current() {
    let cur = CURRENT.get();
    assert!(!cur.is_null(), "yield_current called outside a fiber");
    unsafe {
        // SAFETY: `cur` is the fiber running on this very thread; switching
        // to resumer_rsp returns into its `resume` call.
        switch_ctx(&mut (*cur).fiber_rsp, &(*cur).resumer_rsp);
    }
}

/// Save the current execution context through `save`, restore the one at
/// `restore`, and return on the restored stack.
///
/// # Safety
///
/// `restore` must hold an `rsp` produced by this function (or by the stack
/// seeding in [`Fiber::new`]) for a live stack no other thread is using.
#[unsafe(naked)]
unsafe extern "C" fn switch_ctx(_save: *mut usize, _restore: *const usize) {
    std::arch::naked_asm!(
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov [rdi], rsp",
        "mov rsp, [rsi]",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
    )
}

/// First frame of every fiber: terminates the frame-pointer chain, moves the
/// `FiberInner` pointer from its callee-saved smuggling slot into the first
/// argument register, and calls [`fiber_entry`] (which never returns).
#[unsafe(naked)]
unsafe extern "C" fn fiber_entry_trampoline() {
    std::arch::naked_asm!(
        "xor ebp, ebp",
        "mov rdi, r12",
        "call {entry}",
        "ud2",
        entry = sym fiber_entry,
    )
}

/// Rust-level fiber body: runs the closure, records completion, and makes
/// the final switch back to the resumer. Never returns; unwinding is
/// contained by `catch_unwind` because there is no frame above this one.
unsafe extern "C" fn fiber_entry(inner: *mut FiberInner) -> ! {
    // SAFETY: `inner` is the Box-pinned FiberInner seeded into r12 at
    // creation; the fiber owns it exclusively while running.
    let inner = unsafe { &mut *inner };
    let f = inner.entry.take().expect("fiber entered twice");
    // The kernel's wrapper inside `f` already catches panics and records
    // payloads; this outer catch is the hard safety net that keeps any
    // unwind (including one raised by the wrapper itself) off the seeded
    // frame below, where there is nothing to unwind into.
    let _ = panic::catch_unwind(AssertUnwindSafe(f));
    inner.finished = true;
    let mut scratch = 0usize;
    unsafe {
        // SAFETY: resumer_rsp was saved by the `resume` that ran this slice;
        // the fiber's own context is dead from here on (scratch discard).
        switch_ctx(&mut scratch, &inner.resumer_rsp);
    }
    unreachable!("finished fiber was resumed");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn fiber_runs_to_completion() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let mut f = Fiber::new(64 * 1024, Box::new(move || {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        assert!(!f.is_finished());
        assert!(f.resume());
        assert!(f.is_finished());
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn fiber_yields_and_resumes() {
        let steps = Arc::new(AtomicUsize::new(0));
        let s = steps.clone();
        let mut f = Fiber::new(64 * 1024, Box::new(move || {
            s.fetch_add(1, Ordering::SeqCst);
            yield_current();
            s.fetch_add(1, Ordering::SeqCst);
            yield_current();
            s.fetch_add(1, Ordering::SeqCst);
        }));
        assert!(!f.resume());
        assert_eq!(steps.load(Ordering::SeqCst), 1);
        assert!(!f.resume());
        assert_eq!(steps.load(Ordering::SeqCst), 2);
        assert!(f.resume());
        assert_eq!(steps.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn fiber_panic_is_contained() {
        let mut f = Fiber::new(64 * 1024, Box::new(|| panic!("inside fiber")));
        // A previous test may have left the default hook; silence this one.
        let prev = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        let finished = f.resume();
        panic::set_hook(prev);
        assert!(finished, "panicking fiber must finish");
    }

    #[test]
    fn fiber_can_migrate_between_threads() {
        let log = Arc::new(AtomicUsize::new(0));
        let l = log.clone();
        let mut f = Fiber::new(64 * 1024, Box::new(move || {
            l.fetch_add(1, Ordering::SeqCst);
            yield_current();
            l.fetch_add(10, Ordering::SeqCst);
        }));
        assert!(!f.resume()); // first slice on this thread
        let f = std::thread::spawn(move || {
            assert!(f.resume()); // second slice on another thread
            f
        })
        .join()
        .unwrap();
        assert!(f.is_finished());
        assert_eq!(log.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn on_fiber_is_scoped_to_the_slice() {
        assert!(!on_fiber());
        let mut f = Fiber::new(64 * 1024, Box::new(|| {
            assert!(on_fiber());
            yield_current();
            assert!(on_fiber());
        }));
        f.resume();
        assert!(!on_fiber());
        f.resume();
        assert!(!on_fiber());
    }

    #[test]
    fn many_cheap_fibers() {
        // 4096 fibers, round-robin resumed twice each: the RSS-friendly
        // stack story at the target rank count.
        let counter = Arc::new(AtomicUsize::new(0));
        let mut fibers: Vec<Fiber> = (0..4096)
            .map(|_| {
                let c = counter.clone();
                Fiber::new(32 * 1024, Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    yield_current();
                    c.fetch_add(1, Ordering::SeqCst);
                }))
            })
            .collect();
        for f in fibers.iter_mut() {
            assert!(!f.resume());
        }
        assert_eq!(counter.load(Ordering::SeqCst), 4096);
        for f in fibers.iter_mut() {
            assert!(f.resume());
        }
        assert_eq!(counter.load(Ordering::SeqCst), 8192);
    }
}
