//! Process-side API: the context handed to each simulated process and the
//! one-shot [`Signal`] used to block on conditions maintained elsewhere
//! (event callbacks or other processes).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::kernel::{ProcId, ProcState, SimCore, SimHandle};
use crate::time::SimTime;

/// Marker payload used to unwind process threads when a run is aborted
/// (deadlock or propagated panic). Never observed by user code.
pub(crate) struct AbortToken;

/// Context passed to every simulated process closure.
///
/// All interaction with virtual time goes through this context: reading the
/// clock, advancing it (modelled computation), and blocking on [`Signal`]s.
pub struct ProcCtx {
    core: Arc<SimCore>,
    pid: ProcId,
    parker: Arc<crate::parker::Parker>,
    label: String,
}

impl ProcCtx {
    pub(crate) fn new(
        core: Arc<SimCore>,
        pid: ProcId,
        parker: Arc<crate::parker::Parker>,
        label: String,
    ) -> Self {
        ProcCtx {
            core,
            pid,
            parker,
            label,
        }
    }

    /// This process's id.
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// This process's label (for diagnostics).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.inner.lock().now
    }

    /// A handle for scheduling events from within this process.
    pub fn handle(&self) -> SimHandle {
        SimHandle {
            core: self.core.clone(),
        }
    }

    /// Advance virtual time by `d` for this process: models computation or
    /// any other busy period. Other processes and events run meanwhile.
    pub fn advance(&self, d: SimTime) {
        if d.is_zero() {
            return;
        }
        let sig = Signal::new();
        let sig2 = sig.clone();
        self.handle().schedule(d, move || sig2.fire());
        self.wait(&sig);
    }

    /// Block until `sig` fires. Returns immediately if it already fired.
    ///
    /// Wake-ups can be spurious (a process that once registered with several
    /// signals may be woken by a stale one), so the fired flag is re-checked
    /// in a loop.
    pub fn wait(&self, sig: &Signal) {
        loop {
            {
                let mut s = sig.inner.lock();
                if s.fired {
                    return;
                }
                s.waiters.push(self.pid);
                s.core.get_or_insert_with(|| self.core.clone());
                let mut inner = self.core.inner.lock();
                inner.procs[self.pid.0].state = ProcState::Blocked;
            }
            self.yield_to_scheduler();
        }
    }

    /// Block until any signal in `sigs` fires. Returns the index of a fired
    /// signal (the lowest one if several fired).
    pub fn wait_any(&self, sigs: &[Signal]) -> usize {
        assert!(!sigs.is_empty(), "wait_any on empty signal set");
        loop {
            {
                // Check first, then register with every pending signal.
                for (i, s) in sigs.iter().enumerate() {
                    if s.inner.lock().fired {
                        return i;
                    }
                }
                for s in sigs {
                    let mut st = s.inner.lock();
                    st.waiters.push(self.pid);
                    st.core.get_or_insert_with(|| self.core.clone());
                }
                let mut inner = self.core.inner.lock();
                inner.procs[self.pid.0].state = ProcState::Blocked;
            }
            self.yield_to_scheduler();
        }
    }

    fn yield_to_scheduler(&self) {
        // Checked *before* giving up execution as well as after: a process
        // that was never started when the run began aborting (it runs its
        // body for the first time during abort_all) must unwind at its
        // first blocking call instead of parking forever.
        if self.core.is_aborting() {
            std::panic::panic_any(AbortToken);
        }
        if crate::fiber::on_fiber() {
            // Pooled mode: suspend this continuation; control returns to
            // the driver (or pool worker) that resumed it.
            crate::fiber::yield_current();
        } else {
            // Thread mode: hand the baton back and park this OS thread.
            self.core.sched.unpark();
            self.parker.park();
        }
        if self.core.is_aborting() {
            std::panic::panic_any(AbortToken);
        }
    }
}

#[derive(Default)]
pub(crate) struct SignalInner {
    pub(crate) fired: bool,
    pub(crate) waiters: Vec<ProcId>,
    pub(crate) core: Option<Arc<SimCore>>,
}

/// A one-shot, broadcast wake-up flag.
///
/// Processes block on a `Signal` with [`ProcCtx::wait`]; any code running in
/// the simulation (an event callback, middleware invoked by another process)
/// fires it with [`Signal::fire`]. Once fired it stays fired; waiting on a
/// fired signal returns immediately. For recurring conditions, create a
/// fresh `Signal` per wait and re-check the condition in a loop.
#[derive(Clone, Default)]
pub struct Signal {
    pub(crate) inner: Arc<Mutex<SignalInner>>,
}

impl Signal {
    /// Create an unfired signal.
    pub fn new() -> Self {
        Signal::default()
    }

    /// Fire the signal, waking every currently blocked waiter. Idempotent.
    pub fn fire(&self) {
        let (core, waiters) = {
            let mut s = self.inner.lock();
            s.fired = true;
            (s.core.clone(), std::mem::take(&mut s.waiters))
        };
        if let Some(core) = core {
            for pid in waiters {
                core.make_ready(pid);
            }
        }
    }

    /// Whether the signal has fired.
    pub fn is_fired(&self) -> bool {
        self.inner.lock().fired
    }
}

impl std::fmt::Debug for Signal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Signal(fired={})", self.is_fired())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Sim;

    #[test]
    fn advance_moves_only_this_process() {
        let mut sim = Sim::new(0);
        let t_a = Arc::new(Mutex::new(SimTime::ZERO));
        let t_b = Arc::new(Mutex::new(SimTime::ZERO));
        let (ta, tb) = (t_a.clone(), t_b.clone());
        sim.spawn("a", move |ctx| {
            ctx.advance(SimTime::from_micros(100));
            *ta.lock() = ctx.now();
        });
        sim.spawn("b", move |ctx| {
            ctx.advance(SimTime::from_micros(5));
            *tb.lock() = ctx.now();
        });
        sim.run().unwrap();
        assert_eq!(*t_a.lock(), SimTime::from_micros(100));
        assert_eq!(*t_b.lock(), SimTime::from_micros(5));
    }

    #[test]
    fn advance_zero_is_a_noop() {
        let mut sim = Sim::new(0);
        sim.spawn("a", |ctx| {
            ctx.advance(SimTime::ZERO);
            assert_eq!(ctx.now(), SimTime::ZERO);
        });
        sim.run().unwrap();
    }

    #[test]
    fn signal_handoff_between_processes() {
        let mut sim = Sim::new(0);
        let sig = Signal::new();
        let data = Arc::new(Mutex::new(0u32));
        let (s1, d1) = (sig.clone(), data.clone());
        sim.spawn("producer", move |ctx| {
            ctx.advance(SimTime::from_micros(42));
            *d1.lock() = 7;
            s1.fire();
        });
        let d2 = data.clone();
        sim.spawn("consumer", move |ctx| {
            ctx.wait(&sig);
            assert_eq!(*d2.lock(), 7);
            assert_eq!(ctx.now(), SimTime::from_micros(42));
        });
        sim.run().unwrap();
    }

    #[test]
    fn wait_on_fired_signal_returns_immediately() {
        let mut sim = Sim::new(0);
        sim.spawn("a", |ctx| {
            let sig = Signal::new();
            sig.fire();
            ctx.wait(&sig);
            assert_eq!(ctx.now(), SimTime::ZERO);
        });
        sim.run().unwrap();
    }

    #[test]
    fn wait_any_returns_first_fired() {
        let mut sim = Sim::new(0);
        let sigs = [Signal::new(), Signal::new(), Signal::new()];
        let s1 = sigs[1].clone();
        sim.spawn("firer", move |ctx| {
            ctx.advance(SimTime::from_micros(3));
            s1.fire();
        });
        let sigs2 = sigs.clone();
        sim.spawn("waiter", move |ctx| {
            let i = ctx.wait_any(&sigs2);
            assert_eq!(i, 1);
            assert_eq!(ctx.now(), SimTime::from_micros(3));
        });
        sim.run().unwrap();
    }

    #[test]
    fn signal_broadcast_wakes_all_waiters() {
        let mut sim = Sim::new(0);
        let sig = Signal::new();
        let count = Arc::new(Mutex::new(0));
        for i in 0..5 {
            let (s, c) = (sig.clone(), count.clone());
            sim.spawn(format!("w{i}"), move |ctx| {
                ctx.wait(&s);
                *c.lock() += 1;
            });
        }
        let s = sig.clone();
        sim.spawn("firer", move |ctx| {
            ctx.advance(SimTime::from_micros(1));
            s.fire();
        });
        sim.run().unwrap();
        assert_eq!(*count.lock(), 5);
    }

    #[test]
    fn many_processes_interleave_deterministically() {
        // Two identical runs must produce identical event orderings.
        fn run_once() -> Vec<(u64, usize)> {
            let mut sim = Sim::new(7);
            let log = Arc::new(Mutex::new(Vec::new()));
            for i in 0..20 {
                let log = log.clone();
                sim.spawn(format!("p{i}"), move |ctx| {
                    for step in 0..5 {
                        ctx.advance(SimTime::from_nanos(((i * 13 + step * 7) % 11) + 1));
                        log.lock().push((ctx.now().as_nanos(), i as usize));
                    }
                });
            }
            sim.run().unwrap();
            let v = log.lock().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }
}
