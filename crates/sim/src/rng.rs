//! Deterministic random-number streams.
//!
//! Every consumer of randomness derives an independent stream from the
//! simulation seed plus a stream id (typically a rank), so adding a new
//! consumer never perturbs existing streams.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 step: a cheap, well-distributed 64-bit mixer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless mix of `(seed, x)` into a well-distributed 64-bit value.
///
/// Used by the kernel's tie-break perturbation to key same-time events: for
/// a fixed seed the map `x -> mix64(seed, x)` is a fixed pseudo-random
/// relabeling, so sorting by it yields a deterministic but seed-dependent
/// permutation of equal-time events.
#[inline]
pub fn mix64(seed: u64, x: u64) -> u64 {
    let mut state = seed ^ x.rotate_left(27) ^ 0xD6E8_FEB8_6659_FD93;
    splitmix64(&mut state)
}

/// Derive a deterministic RNG for `(seed, stream)`.
pub fn seeded_rng(seed: u64, stream: u64) -> SmallRng {
    let mut state = seed ^ stream.rotate_left(32) ^ 0xA076_1D64_78BD_642F;
    let mut key = [0u8; 32];
    for chunk in key.chunks_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    SmallRng::from_seed(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = seeded_rng(1, 2);
        let mut b = seeded_rng(1, 2);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = seeded_rng(1, 2);
        let mut b = seeded_rng(1, 3);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1, 2);
        let mut b = seeded_rng(9, 2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }
}
