//! # mpisim-sim — deterministic discrete-event simulation kernel
//!
//! The substrate beneath the MPI-RMA middleware reproduction: a virtual
//! clock, an event queue, and *cooperatively scheduled process threads*.
//! Each simulated MPI rank is an OS thread that runs exclusively (one entity
//! at a time, baton-passed), blocks in virtual time via [`Signal`]s, and
//! models computation with [`ProcCtx::advance`]. Two runs with the same seed
//! and the same program produce bit-identical schedules.
//!
//! ## Example
//!
//! ```
//! use mpisim_sim::{Sim, SimTime, Signal};
//!
//! let mut sim = Sim::new(1);
//! let ready = Signal::new();
//! let r = ready.clone();
//! sim.spawn("server", move |ctx| {
//!     ctx.advance(SimTime::from_micros(5)); // boot time
//!     r.fire();
//! });
//! sim.spawn("client", move |ctx| {
//!     ctx.wait(&ready);
//!     assert_eq!(ctx.now(), SimTime::from_micros(5));
//! });
//! sim.run().unwrap();
//! ```

#![warn(missing_docs)]

mod kernel;
mod parker;
mod process;
mod rng;
mod time;

pub use kernel::{
    EventId, ProcId, Sim, SimError, SimHandle, SimStats, DEFAULT_EVENT_CAP, DEFAULT_STACK_SIZE,
};
pub use process::{ProcCtx, Signal};
pub use rng::{mix64, seeded_rng};
pub use time::SimTime;
