//! # mpisim-sim — deterministic discrete-event simulation kernel
//!
//! The substrate beneath the MPI-RMA middleware reproduction: a virtual
//! clock, an event queue, and *cooperatively scheduled processes*. Each
//! simulated MPI rank runs exclusively (one entity at a time), blocks in
//! virtual time via [`Signal`]s, and models computation with
//! [`ProcCtx::advance`]. By default ranks are stackful fibers multiplexed
//! onto the driver thread ([`ExecMode::Pooled`]) so thousands of ranks fit
//! in one process; the legacy one-OS-thread-per-rank mode
//! ([`ExecMode::ThreadPerRank`]) remains available as a differential
//! baseline. Two runs with the same seed and the same program produce
//! bit-identical schedules in every mode.
//!
//! ## Example
//!
//! ```
//! use mpisim_sim::{Sim, SimTime, Signal};
//!
//! let mut sim = Sim::new(1);
//! let ready = Signal::new();
//! let r = ready.clone();
//! sim.spawn("server", move |ctx| {
//!     ctx.advance(SimTime::from_micros(5)); // boot time
//!     r.fire();
//! });
//! sim.spawn("client", move |ctx| {
//!     ctx.wait(&ready);
//!     assert_eq!(ctx.now(), SimTime::from_micros(5));
//! });
//! sim.run().unwrap();
//! ```

#![warn(missing_docs)]

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod fiber;
#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
#[path = "fiber_fallback.rs"]
mod fiber;
mod kernel;
mod parker;
mod process;
mod rng;
mod time;

pub use kernel::{
    EventId, ExecMode, ProcId, Sim, SimError, SimHandle, SimStats, DEFAULT_EVENT_CAP,
    DEFAULT_STACK_SIZE,
};
pub use process::{ProcCtx, Signal};
pub use rng::{mix64, seeded_rng};
pub use time::SimTime;
