//! Fallback fiber API for targets without a context-switch implementation
//! (anything other than x86_64 Linux). Pooled execution is reported as
//! unsupported and the kernel silently downgrades to thread-per-rank mode,
//! so none of these stubs is ever reached at runtime.

/// Pooled (fiber) execution is unavailable on this target.
pub(crate) const SUPPORTED: bool = false;

/// Unreachable placeholder; the kernel never constructs fibers when
/// [`SUPPORTED`] is false.
pub(crate) struct Fiber;

impl Fiber {
    pub(crate) fn new(_stack_size: usize, _f: Box<dyn FnOnce() + Send + 'static>) -> Fiber {
        unreachable!("fiber execution is not supported on this target")
    }

    pub(crate) fn resume(&mut self) -> bool {
        unreachable!("fiber execution is not supported on this target")
    }

    pub(crate) fn is_finished(&self) -> bool {
        unreachable!("fiber execution is not supported on this target")
    }
}

/// Always false: no fiber can be running.
pub(crate) fn on_fiber() -> bool {
    false
}

/// Never reachable: [`on_fiber`] is always false on this target.
pub(crate) fn yield_current() {
    unreachable!("fiber execution is not supported on this target")
}
