//! Unit suite for the slack-guided IR rewriter: every relaxation kind is
//! exercised in isolation, and each is proven *syntactically idempotent*
//! — `rewrite(rewrite(p)) == rewrite(p)` — so the fixpoint the rewriter
//! reaches is stable under re-analysis.
//!
//! The companion end-to-end property (rewritten programs stay E-clean,
//! reproduce the original byte-for-byte, and strictly reduce blocked
//! host steps) lives in `mpisim-check::crossval::crossval_rewrites`.

use mpisim_analyze::{
    analyze, analyze_slack, rewrite, rewrite_with, rewrite_with_model, slack_catalog_cases,
    Close, CostModel, IrProgram, RewriteMode, SlackClass, Stmt,
};

const WIN: usize = 64;

/// Count blocking sync closes + barriers: the quantity every sound
/// rewrite pass must strictly decrease (or keep, when inserting waits
/// for safety — never increase).
fn blocking_syncs(p: &IrProgram) -> usize {
    p.ranks
        .iter()
        .flatten()
        .filter(|s| match s {
            Stmt::Fence { close, .. }
            | Stmt::Complete { close, .. }
            | Stmt::WaitEpoch { close, .. }
            | Stmt::Unlock { close, .. }
            | Stmt::UnlockAll { close, .. }
            | Stmt::Flush { close, .. } => close.is_blocking(),
            _ => false,
        })
        .count()
}

fn assert_idempotent(p: &IrProgram) {
    let once = rewrite(p);
    let twice = rewrite(&once.0);
    assert_eq!(once.0, twice.0, "rewrite must be a fixpoint");
    assert!(!twice.1.changed(), "second rewrite must be a no-op: {:?}", twice.1);
}

// ------------------------------------------------- per-relaxation kinds

#[test]
fn fence_close_is_relaxed_to_nonblocking() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Barrier,
    ]);
    p.ranks[1].extend([
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Barrier,
    ]);
    let (rw, rep) = rewrite(&p);
    assert!(rep.relaxed > 0, "{rep:?}");
    assert!(blocking_syncs(&rw) < blocking_syncs(&p));
    assert!(matches!(rw.ranks[0][2], Stmt::Fence { close: Close::Nonblocking, .. }));
    assert!(analyze(&rw).is_empty(), "relaxed program must stay E-clean");
    assert_idempotent(&p);
}

#[test]
fn redundant_flush_is_elided() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Flush { win: 0, target: Some(1), local_only: false, close: Close::Blocking },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    let (rw, rep) = rewrite(&p);
    assert!(rep.elided > 0, "{rep:?}");
    assert!(
        !rw.ranks[0].iter().any(|s| matches!(s, Stmt::Flush { close: Close::Blocking, .. })),
        "{:?}",
        rw.ranks[0]
    );
    assert!(analyze(&rw).is_empty());
    assert_idempotent(&p);
}

#[test]
fn flush_carrying_local_requests_is_localized() {
    // A local-only iflush rides on the blocking flush: the flush cannot
    // vanish (the request must be discharged) but weakens to
    // flush_local.
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Flush { win: 0, target: Some(1), local_only: true, close: Close::Nonblocking },
        Stmt::Flush { win: 0, target: Some(1), local_only: false, close: Close::Blocking },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    let (rw, rep) = rewrite(&p);
    assert!(rep.localized > 0, "{rep:?}");
    assert!(
        rw.ranks[0]
            .iter()
            .any(|s| matches!(s, Stmt::Flush { local_only: true, close: Close::Blocking, .. })),
        "{:?}",
        rw.ranks[0]
    );
    assert!(analyze(&rw).is_empty());
    assert_idempotent(&p);
}

#[test]
fn unlock_relaxation_inserts_wait_before_dependent_use() {
    // The unlock's put is consumed by a later Get on the same rank with
    // slack in between (the disjoint puts of the second epoch are
    // overlap room the cost model prices in): the rewriter flips the
    // unlock nonblocking and plants a WaitAll at the latest safe point
    // before the Get.
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
        Stmt::Lock { win: 0, target: 1, exclusive: false, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 32, len: 8 },
        Stmt::Put { win: 0, target: 1, disp: 40, len: 8 },
        Stmt::Get { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    let (rw, rep) = rewrite(&p);
    assert!(rep.relaxed > 0, "{rep:?}");
    assert!(rep.waits_inserted > 0, "{rep:?}");
    let wait_at = rw.ranks[0].iter().position(|s| matches!(s, Stmt::WaitAll));
    let get_at = rw.ranks[0]
        .iter()
        .position(|s| matches!(s, Stmt::Get { .. }))
        .expect("get survives");
    assert!(wait_at.is_some_and(|w| w < get_at), "{:?}", rw.ranks[0]);
    assert!(analyze(&rw).is_empty());
    assert_idempotent(&p);
}

#[test]
fn eop_deferred_findings_get_one_trailing_wait() {
    // The relaxed fence's request has no dependent use at all: the
    // rewriter parks completion in a single trailing WaitAll so the
    // program stays E008-clean.
    let mut p = IrProgram::new(2, WIN);
    for r in 0..2 {
        p.ranks[r].extend([
            Stmt::Fence { win: 0, close: Close::Blocking },
            Stmt::Fence { win: 0, close: Close::Blocking },
            Stmt::Barrier,
        ]);
    }
    p.ranks[0].insert(1, Stmt::Put { win: 0, target: 1, disp: 0, len: 8 });
    let (rw, rep) = rewrite(&p);
    assert!(rep.relaxed > 0, "{rep:?}");
    for r in 0..2 {
        let waits = rw.ranks[r].iter().filter(|s| matches!(s, Stmt::WaitAll)).count();
        let open = rw.ranks[r]
            .iter()
            .filter(|s| match s {
                Stmt::Fence { close, .. } => !close.is_blocking(),
                _ => false,
            })
            .count();
        assert!(open == 0 || waits > 0, "rank {r} leaks requests: {:?}", rw.ranks[r]);
    }
    assert!(analyze(&rw).is_empty());
    assert_idempotent(&p);
}

// ------------------------------------------------------- cost model

#[test]
fn unprofitable_relaxation_is_skipped_but_advisory_still_fires() {
    // One statement of slack between the unlock and its dependent Get:
    // the overlap the relaxation could reclaim cannot pay for the
    // request bookkeeping plus the inserted wait, so the calibrated
    // cost model vetoes the rewrite — but the slack pass still reports
    // the latent relaxable finding.
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
        Stmt::Lock { win: 0, target: 1, exclusive: false, nonblocking: false },
        Stmt::Get { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    let slack = analyze_slack(&p);
    assert!(
        slack.findings.iter().any(|f| f.class == SlackClass::Relaxable),
        "the advisory must still fire: {:?}",
        slack.findings
    );
    let (rw, rep) = rewrite(&p);
    assert_eq!(rep.relaxed, 0, "{rep:?}");
    assert!(rep.skipped > 0, "{rep:?}");
    assert_eq!(rw, p, "vetoed program must be untouched");
    // The veto is the cost model's, not the classifier's: pricing the
    // same relaxation as free applies it.
    let (free, frep) = rewrite_with_model(&p, RewriteMode::Sound, &CostModel::free());
    assert!(frep.relaxed > 0, "{frep:?}");
    assert_eq!(frep.skipped, 0, "{frep:?}");
    assert!(analyze(&free).is_empty());
}

#[test]
fn contended_exclusive_unlock_is_never_relaxed() {
    // Two origins exclusively lock the same target: relaxing either
    // unlock defers the release the other's acquire is waiting on, so
    // the structural contention veto declines both — even under the
    // free cost model, which prices every relaxation as profitable.
    let contended = |exclusive: bool| {
        let mut p = IrProgram::new(3, WIN);
        for me in 0..2usize {
            p.ranks[me].extend([
                Stmt::Lock { win: 0, target: 2, exclusive, nonblocking: false },
                Stmt::Put { win: 0, target: 2, disp: me * 8, len: 8 },
                Stmt::Unlock { win: 0, target: 2, close: Close::Blocking },
                Stmt::Barrier,
            ]);
        }
        p.ranks[2].push(Stmt::Barrier);
        p
    };
    let p = contended(true);
    assert!(analyze(&p).is_empty());
    let (rw, rep) = rewrite_with_model(&p, RewriteMode::Sound, &CostModel::free());
    assert_eq!(rep.relaxed, 0, "{rep:?}");
    assert!(rep.skipped >= 2, "{rep:?}");
    assert_eq!(rw, p, "vetoed program must be untouched");
    // Shared/shared contention on the same target is no contention at
    // all — concurrent shared locks never wait on each other — so the
    // identical shape with shared locks relaxes both unlocks.
    let p = contended(false);
    let (rw, rep) = rewrite(&p);
    assert!(rep.relaxed >= 2, "{rep:?}");
    assert!(analyze(&rw).is_empty());
    assert_idempotent(&p);
}

#[test]
fn overwide_start_group_is_shrunk_symmetrically() {
    // The W004 shape: rank 0's start group names rank 2 but the epoch
    // only operates toward rank 1. The rewriter drops rank 2 from the
    // start group AND rank 0 from rank 2's matching post group, keeping
    // the GATS pairing aligned.
    let mut p = IrProgram::new(3, WIN);
    p.ranks[0].extend([
        Stmt::Start { win: 0, group: vec![1, 2] },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Complete { win: 0, close: Close::Blocking },
    ]);
    for r in 1..3 {
        p.ranks[r].extend([
            Stmt::Post { win: 0, group: vec![0] },
            Stmt::WaitEpoch { win: 0, close: Close::Blocking },
        ]);
    }
    assert!(analyze(&p).is_empty());
    let (rw, rep) = rewrite(&p);
    assert!(rep.shrunk > 0, "{rep:?}");
    assert!(
        matches!(&rw.ranks[0][0], Stmt::Start { group, .. } if group.as_slice() == [1]),
        "{:?}",
        rw.ranks[0]
    );
    assert!(
        matches!(&rw.ranks[2][0], Stmt::Post { group, .. } if group.is_empty()),
        "{:?}",
        rw.ranks[2]
    );
    assert!(analyze(&rw).is_empty(), "shrunk program must stay E-clean");
    assert_idempotent(&p);
}

#[test]
fn shrink_never_prunes_iflush_discharging_waits() {
    // Group shrinking must not disturb the flush-discharge chain: an
    // iflush whose request parks at a WaitAll stays exactly where it is
    // while the over-wide group shrinks around it.
    let mut p = IrProgram::new(3, WIN);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Flush { win: 0, target: Some(1), local_only: false, close: Close::Nonblocking },
        Stmt::WaitAll,
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
        Stmt::Start { win: 0, group: vec![1, 2] },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Complete { win: 0, close: Close::Blocking },
    ]);
    for r in 1..3 {
        p.ranks[r].extend([
            Stmt::Post { win: 0, group: vec![0] },
            Stmt::WaitEpoch { win: 0, close: Close::Blocking },
        ]);
    }
    assert!(analyze(&p).is_empty());
    let (rw, rep) = rewrite(&p);
    assert!(rep.shrunk > 0, "{rep:?}");
    let iflushes = |q: &IrProgram| {
        q.ranks[0]
            .iter()
            .filter(|s| matches!(s, Stmt::Flush { close: Close::Nonblocking, .. }))
            .count()
    };
    assert_eq!(iflushes(&rw), iflushes(&p), "iflush must survive: {:?}", rw.ranks[0]);
    assert!(
        rw.ranks[0].iter().any(|s| matches!(s, Stmt::WaitAll)),
        "discharging wait must survive: {:?}",
        rw.ranks[0]
    );
    assert!(analyze(&rw).is_empty());
    assert_idempotent(&p);
}

// ---------------------------------------------------- negative space

#[test]
fn reorder_pinned_program_is_untouched() {
    // Symmetric conflicting fence/put phases under `reorder`: every sync
    // is pinned Required, so the rewriter must not change a thing.
    let mut p = IrProgram::new(2, WIN);
    p.reorder = true;
    for me in 0..2 {
        let peer = 1 - me;
        p.ranks[me].extend([
            Stmt::Fence { win: 0, close: Close::Blocking },
            Stmt::Put { win: 0, target: peer, disp: 0, len: 8 },
            Stmt::Fence { win: 0, close: Close::Blocking },
            Stmt::Put { win: 0, target: peer, disp: 0, len: 8 },
            Stmt::Fence { win: 0, close: Close::Blocking },
            Stmt::Barrier,
        ]);
    }
    assert!(analyze(&p).is_empty());
    let (rw, rep) = rewrite(&p);
    assert!(!rep.changed(), "{rep:?}");
    assert_eq!(rw, p);
}

#[test]
fn already_relaxed_program_is_a_fixpoint() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Fence { win: 0, close: Close::Nonblocking },
        Stmt::WaitAll,
        Stmt::Barrier,
    ]);
    p.ranks[1].extend([
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Barrier,
    ]);
    // Rank 1's dormant second fence may still relax, but rank 0's
    // already-nonblocking close must never be touched again.
    let (rw, _) = rewrite(&p);
    assert!(matches!(rw.ranks[0][2], Stmt::Fence { close: Close::Nonblocking, .. }));
    assert_idempotent(&p);
}

// -------------------------------------------------- catalog properties

#[test]
fn slack_catalog_rewrites_are_clean_and_idempotent() {
    for (code, p) in slack_catalog_cases() {
        assert!(analyze(&p).is_empty(), "{code}: catalog case must start E-clean");
        let (rw, _rep) = rewrite(&p);
        assert!(analyze(&rw).is_empty(), "{code}: rewrite broke E-cleanliness");
        assert!(
            blocking_syncs(&rw) <= blocking_syncs(&p),
            "{code}: rewrite increased blocking syncs"
        );
        assert_idempotent(&p);
    }
}

#[test]
fn rewritten_programs_carry_no_advisories_left_behind() {
    // After the fixpoint, re-running the slack pass must find nothing
    // actionable: every remaining finding is Required.
    for (code, p) in slack_catalog_cases() {
        let (rw, _) = rewrite(&p);
        let report = analyze_slack(&rw);
        assert!(
            report.findings.iter().all(|f| f.class == mpisim_analyze::SlackClass::Required),
            "{code}: leftover slack after rewrite: {:?}",
            report.findings
        );
    }
}

// ----------------------------------------------------- planted unsound

#[test]
fn plant_unsound_deletes_exactly_one_sync() {
    let mut p = IrProgram::new(2, WIN);
    for r in 0..2 {
        p.ranks[r].extend([
            Stmt::Fence { win: 0, close: Close::Blocking },
            Stmt::Fence { win: 0, close: Close::Blocking },
        ]);
    }
    p.ranks[0].insert(1, Stmt::Put { win: 0, target: 1, disp: 0, len: 8 });
    let (sound, _) = rewrite_with(&p, RewriteMode::Sound);
    let (planted, rep) = rewrite_with(&p, RewriteMode::PlantUnsound);
    let (rank, _step) = rep.planted.expect("a victim sync must be recorded");
    assert_eq!(rank, 0);
    let total = |q: &IrProgram| q.ranks.iter().map(|r| r.len()).sum::<usize>();
    assert_eq!(total(&planted) + 1, total(&sound), "exactly one statement deleted");
}

#[test]
fn plant_unsound_falls_back_to_barrier() {
    // No fences anywhere: the planter's fallback chain picks rank 0's
    // barrier.
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
        Stmt::Barrier,
    ]);
    p.ranks[1].push(Stmt::Barrier);
    let (planted, rep) = rewrite_with(&p, RewriteMode::PlantUnsound);
    assert!(rep.planted.is_some());
    assert!(
        !planted.ranks[0].iter().any(|s| matches!(s, Stmt::Barrier)),
        "{:?}",
        planted.ranks[0]
    );
}
