//! One minimal positive program and one near-miss negative program per
//! diagnostic code E001–E011, plus direct vector-clock race-detector
//! checks over synthetic sync traces.
//!
//! "Near-miss" means the negative differs from the positive by the
//! smallest edit that makes it legal — the analyzer must report nothing
//! at all for it.

use mpisim_analyze::{
    analyze, analyze_slack, detect_races_in, has_code, Close, Code, FetchKind, IrProgram,
    SlackClass, Stmt,
};
use mpisim_core::trace::{AccessKind, Plane, SyncEvent, SyncRecord};
use mpisim_core::{Rank, ReduceOp, WinId};

const WIN: usize = 64;

fn fence_all(p: &mut IrProgram, close: Close) {
    for r in 0..p.n_ranks {
        p.ranks[r].push(Stmt::Fence { win: 0, close });
    }
}

fn assert_clean(p: &IrProgram) {
    let diags = analyze(p);
    assert!(diags.is_empty(), "expected no diagnostics, got: {diags:?}");
}

// ---------------------------------------------------------------- E001

#[test]
fn e001_op_outside_epoch() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].push(Stmt::Put { win: 0, target: 1, disp: 0, len: 8 });
    assert!(has_code(&analyze(&p), Code::E001));
}

#[test]
fn e001_near_miss_op_inside_lock() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    assert_clean(&p);
}

// ---------------------------------------------------------------- E002

#[test]
fn e002_target_outside_start_group() {
    let mut p = IrProgram::new(3, WIN);
    p.ranks[0].extend([
        Stmt::Start { win: 0, group: vec![1] },
        Stmt::Put { win: 0, target: 2, disp: 0, len: 8 },
        Stmt::Complete { win: 0, close: Close::Blocking },
    ]);
    p.ranks[1].extend([Stmt::Post { win: 0, group: vec![0] }, Stmt::WaitEpoch { win: 0, close: Close::Blocking }]);
    assert!(has_code(&analyze(&p), Code::E002));
}

#[test]
fn e002_near_miss_target_in_group() {
    let mut p = IrProgram::new(3, WIN);
    p.ranks[0].extend([
        Stmt::Start { win: 0, group: vec![1, 2] },
        Stmt::Put { win: 0, target: 2, disp: 0, len: 8 },
        Stmt::Complete { win: 0, close: Close::Blocking },
    ]);
    for r in 1..3 {
        p.ranks[r].extend([Stmt::Post { win: 0, group: vec![0] }, Stmt::WaitEpoch { win: 0, close: Close::Blocking }]);
    }
    assert_clean(&p);
}

// ---------------------------------------------------------------- E003

#[test]
fn e003_lock_never_unlocked() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
    ]);
    assert!(has_code(&analyze(&p), Code::E003));
}

#[test]
fn e003_near_miss_lock_unlocked() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    assert_clean(&p);
}

// ---------------------------------------------------------------- E004

#[test]
fn e004_unlock_without_lock() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].push(Stmt::Unlock { win: 0, target: 1, close: Close::Blocking });
    assert!(has_code(&analyze(&p), Code::E004));
}

#[test]
fn e004_near_miss_matched_unlock() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: false, nonblocking: false },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    assert_clean(&p);
}

// ---------------------------------------------------------------- E005

#[test]
fn e005_lock_all_inside_start_epoch() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Start { win: 0, group: vec![1] },
        Stmt::LockAll { win: 0 },
        Stmt::UnlockAll { win: 0, close: Close::Blocking },
        Stmt::Complete { win: 0, close: Close::Blocking },
    ]);
    p.ranks[1].extend([Stmt::Post { win: 0, group: vec![0] }, Stmt::WaitEpoch { win: 0, close: Close::Blocking }]);
    assert!(has_code(&analyze(&p), Code::E005));
}

#[test]
fn e005_near_miss_dormant_trailing_fence() {
    // A trailing fence phase with no operations is dormant; the engine
    // (and thus the analyzer) tolerates opening a lock epoch under it.
    let mut p = IrProgram::new(2, WIN);
    fence_all(&mut p, Close::Blocking);
    fence_all(&mut p, Close::Blocking);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    assert_clean(&p);
}

// ---------------------------------------------------------------- E006

#[test]
fn e006_overlapping_cross_origin_puts() {
    let mut p = IrProgram::new(3, WIN);
    fence_all(&mut p, Close::Blocking);
    p.ranks[1].push(Stmt::Put { win: 0, target: 0, disp: 0, len: 8 });
    p.ranks[2].push(Stmt::Put { win: 0, target: 0, disp: 4, len: 8 });
    fence_all(&mut p, Close::Blocking);
    assert!(has_code(&analyze(&p), Code::E006));
}

#[test]
fn e006_near_miss_disjoint_puts() {
    let mut p = IrProgram::new(3, WIN);
    fence_all(&mut p, Close::Blocking);
    p.ranks[1].push(Stmt::Put { win: 0, target: 0, disp: 0, len: 8 });
    p.ranks[2].push(Stmt::Put { win: 0, target: 0, disp: 8, len: 8 });
    fence_all(&mut p, Close::Blocking);
    assert_clean(&p);
}

// ---------------------------------------------------------------- E007

#[test]
fn e007_put_get_overlap() {
    let mut p = IrProgram::new(3, WIN);
    fence_all(&mut p, Close::Blocking);
    p.ranks[1].push(Stmt::Put { win: 0, target: 0, disp: 0, len: 8 });
    p.ranks[2].push(Stmt::Get { win: 0, target: 0, disp: 4, len: 8 });
    fence_all(&mut p, Close::Blocking);
    assert!(has_code(&analyze(&p), Code::E007));
}

#[test]
fn e007_near_miss_get_get_overlap() {
    // Two overlapping reads never conflict.
    let mut p = IrProgram::new(3, WIN);
    fence_all(&mut p, Close::Blocking);
    p.ranks[1].push(Stmt::Get { win: 0, target: 0, disp: 0, len: 8 });
    p.ranks[2].push(Stmt::Get { win: 0, target: 0, disp: 4, len: 8 });
    fence_all(&mut p, Close::Blocking);
    assert_clean(&p);
}

// ---------------------------------------------------------------- E008

#[test]
fn e008_leaked_ifence_request() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([Stmt::Fence { win: 0, close: Close::Blocking }, Stmt::Fence { win: 0, close: Close::Nonblocking }]);
    p.ranks[1].extend([Stmt::Fence { win: 0, close: Close::Blocking }, Stmt::Fence { win: 0, close: Close::Blocking }]);
    assert!(has_code(&analyze(&p), Code::E008));
}

#[test]
fn e008_near_miss_request_waited() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Fence { win: 0, close: Close::Nonblocking },
        Stmt::WaitAll,
    ]);
    p.ranks[1].extend([Stmt::Fence { win: 0, close: Close::Blocking }, Stmt::Fence { win: 0, close: Close::Blocking }]);
    assert_clean(&p);
}

// ---------------------------------------------------------------- E009

fn reordered_fence_phases(second_disp: usize) -> IrProgram {
    let mut p = IrProgram::new(2, WIN);
    p.reorder = true;
    p.unsafe_fence_reorder = true;
    p.ranks[0].extend([
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Fence { win: 0, close: Close::Nonblocking },
        Stmt::Put { win: 0, target: 1, disp: second_disp, len: 8 },
        Stmt::Fence { win: 0, close: Close::Nonblocking },
        Stmt::WaitAll,
    ]);
    p.ranks[1].extend([
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Fence { win: 0, close: Close::Blocking },
    ]);
    p
}

#[test]
fn e009_conflicting_reordered_fence_phases() {
    // unsafe_fence_reorder lets adjacent fence phases progress
    // concurrently; writing the same bytes in both is schedule-dependent.
    assert!(has_code(&analyze(&reordered_fence_phases(0)), Code::E009));
}

#[test]
fn e009_near_miss_disjoint_reordered_phases() {
    assert_clean(&reordered_fence_phases(8));
}

#[test]
fn e009_near_miss_no_reorder_flags() {
    let mut p = reordered_fence_phases(0);
    p.reorder = false;
    p.unsafe_fence_reorder = false;
    assert_clean(&p);
}

// ---------------------------------------------------------------- E010

#[test]
fn e010_put_past_window_end() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: WIN - 4, len: 8 },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    assert!(has_code(&analyze(&p), Code::E010));
}

#[test]
fn e010_near_miss_put_to_window_end() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: WIN - 8, len: 8 },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    assert_clean(&p);
}

// ---------------------------------------------------------------- E011

#[test]
fn e011_unequal_fence_counts() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([Stmt::Fence { win: 0, close: Close::Blocking }, Stmt::Fence { win: 0, close: Close::Blocking }]);
    p.ranks[1].push(Stmt::Fence { win: 0, close: Close::Blocking });
    assert!(has_code(&analyze(&p), Code::E011));
}

#[test]
fn e011_start_without_matching_post() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([Stmt::Start { win: 0, group: vec![1] }, Stmt::Complete { win: 0, close: Close::Blocking }]);
    assert!(has_code(&analyze(&p), Code::E011));
}

#[test]
fn e011_near_miss_matched_collectives() {
    let mut p = IrProgram::new(2, WIN);
    fence_all(&mut p, Close::Blocking);
    fence_all(&mut p, Close::Blocking);
    p.ranks[0].extend([Stmt::Start { win: 0, group: vec![1] }, Stmt::Complete { win: 0, close: Close::Blocking }]);
    p.ranks[1].extend([Stmt::Post { win: 0, group: vec![0] }, Stmt::WaitEpoch { win: 0, close: Close::Blocking }]);
    assert_clean(&p);
}

// ------------------------------------------------- accumulate semantics

#[test]
fn same_op_accumulates_do_not_conflict() {
    let mut p = IrProgram::new(3, WIN);
    fence_all(&mut p, Close::Blocking);
    p.ranks[1].push(Stmt::Acc { win: 0, target: 0, disp: 0, len: 8, op: ReduceOp::Sum });
    p.ranks[2].push(Stmt::Acc { win: 0, target: 0, disp: 0, len: 8, op: ReduceOp::Sum });
    fence_all(&mut p, Close::Blocking);
    assert_clean(&p);
}

#[test]
fn mixed_op_accumulates_conflict() {
    let mut p = IrProgram::new(3, WIN);
    fence_all(&mut p, Close::Blocking);
    p.ranks[1].push(Stmt::Acc { win: 0, target: 0, disp: 0, len: 8, op: ReduceOp::Sum });
    p.ranks[2].push(Stmt::Acc { win: 0, target: 0, disp: 0, len: 8, op: ReduceOp::Prod });
    fence_all(&mut p, Close::Blocking);
    assert!(has_code(&analyze(&p), Code::E006));
}

// ------------------------------------- E012: unguarded remote dependency

#[test]
fn e012_start_toward_crashed_peer() {
    let mut p = IrProgram::new(3, WIN);
    p.crashed = vec![2];
    p.ranks[0].extend([
        Stmt::Start { win: 0, group: vec![1, 2] },
        Stmt::Put { win: 0, target: 2, disp: 0, len: 8 },
        Stmt::Complete { win: 0, close: Close::Blocking },
    ]);
    for r in 1..3 {
        p.ranks[r].extend([Stmt::Post { win: 0, group: vec![0] }, Stmt::WaitEpoch { win: 0, close: Close::Blocking }]);
    }
    assert!(has_code(&analyze(&p), Code::E012));
}

#[test]
fn e012_lock_on_crashed_peer() {
    let mut p = IrProgram::new(3, WIN);
    p.crashed = vec![1];
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    assert!(has_code(&analyze(&p), Code::E012));
}

#[test]
fn e012_not_reported_when_dependencies_avoid_the_crash() {
    // Rank 2 crashes, but nothing a surviving rank does waits on it:
    // rank 0's whole epoch structure points at rank 1.
    let mut p = IrProgram::new(3, WIN);
    p.crashed = vec![2];
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    assert!(!has_code(&analyze(&p), Code::E012));
}

#[test]
fn e012_relaxed_for_recovered_peer() {
    // Same dependency as `e012_lock_on_crashed_peer`, but the fault model
    // also restarts the victim from its checkpoint: the grant arrives
    // after the bounded outage, so the rule is relaxed.
    let mut p = IrProgram::new(3, WIN);
    p.crashed = vec![1];
    p.recovered = vec![1];
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    assert!(!has_code(&analyze(&p), Code::E012));
}

#[test]
fn e012_relaxation_is_per_rank() {
    // Two crashed peers, one recovered: only the dependency on the
    // unrecovered one is a hazard.
    let mut p = IrProgram::new(4, WIN);
    p.crashed = vec![1, 2];
    p.recovered = vec![2];
    for target in [1usize, 2] {
        p.ranks[0].extend([
            Stmt::Lock { win: 0, target, exclusive: true, nonblocking: false },
            Stmt::Put { win: 0, target, disp: 0, len: 8 },
            Stmt::Unlock { win: 0, target, close: Close::Blocking },
        ]);
    }
    let diags = analyze(&p);
    let e012: Vec<_> = diags.iter().filter(|d| d.code == Code::E012).collect();
    assert!(!e012.is_empty(), "the unrecovered crash must still be flagged");
    assert!(e012.iter().all(|d| d.detail.contains("rank 1")), "{e012:?}");
}

#[test]
fn e012_relaxed_collective_with_recovered_participant() {
    // A barrier/fence with a crashed participant is fatal — unless that
    // participant restarts and rejoins the collective.
    let mut p = IrProgram::new(3, WIN);
    p.crashed = vec![2];
    for r in 0..3 {
        p.ranks[r].push(Stmt::Barrier);
    }
    assert!(has_code(&analyze(&p), Code::E012));
    p.recovered = vec![2];
    assert!(!has_code(&analyze(&p), Code::E012));
}

#[test]
fn e012_crashed_ranks_own_program_is_not_flagged() {
    // The crashed rank's own dangling dependencies are the fault model's
    // doing, not the program's.
    let mut p = IrProgram::new(3, WIN);
    p.crashed = vec![0];
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    assert!(!has_code(&analyze(&p), Code::E012));
}

// ----------------------------------------------- negative-corpus sweep

#[test]
fn negative_corpus_fully_flagged() {
    use mpisim_analyze::{analyze as run, generate_negative, NegFamily};
    for family in NegFamily::ALL {
        for index in 0..32 {
            let case = generate_negative(family, index);
            let diags = run(&case.program);
            assert!(
                has_code(&diags, case.expect),
                "{family:?} seed {index} not flagged with {}: {diags:?}",
                case.expect
            );
        }
    }
}

#[test]
fn catalog_cases_cover_every_code() {
    use mpisim_analyze::catalog_cases;
    let cases = catalog_cases();
    for code in Code::ALL {
        let covered = cases
            .iter()
            .any(|(c, p)| *c == code && has_code(&analyze(p), code));
        assert!(covered, "no catalog case triggers {code}");
    }
}

// ---------------------------------------------------------------- E013

#[test]
fn e013_pscw_start_cycle() {
    // Both ranks start toward each other before either posts: each
    // blocking Complete waits for a grant the peer can only send after
    // its own Complete — a cross-rank cycle.
    let mut p = IrProgram::new(2, WIN);
    for (me, peer) in [(0usize, 1usize), (1, 0)] {
        p.ranks[me].extend([
            Stmt::Start { win: 0, group: vec![peer] },
            Stmt::Put { win: 0, target: peer, disp: 0, len: 8 },
            Stmt::Complete { win: 0, close: Close::Blocking },
            Stmt::Post { win: 0, group: vec![peer] },
            Stmt::WaitEpoch { win: 0, close: Close::Blocking },
        ]);
    }
    let diags = analyze(&p);
    assert!(has_code(&diags, Code::E013), "{diags:?}");
    let d = diags.iter().find(|d| d.code == Code::E013).unwrap();
    assert!(d.detail.contains("rank 0") && d.detail.contains("rank 1"), "{d:?}");
}

#[test]
fn e013_near_miss_post_before_start() {
    // Same statements, but each rank posts before starting: grants are
    // available up front and every wait can complete.
    let mut p = IrProgram::new(2, WIN);
    for (me, peer) in [(0usize, 1usize), (1, 0)] {
        p.ranks[me].extend([
            Stmt::Post { win: 0, group: vec![peer] },
            Stmt::Start { win: 0, group: vec![peer] },
            Stmt::Put { win: 0, target: peer, disp: 0, len: 8 },
            Stmt::Complete { win: 0, close: Close::Blocking },
            Stmt::WaitEpoch { win: 0, close: Close::Blocking },
        ]);
    }
    assert_clean(&p);
}

// ---------------------------------------------------------------- E014

#[test]
fn e014_lock_order_inversion() {
    // Rank 0 acquires locks (win 0, rank 1) then (win 0, rank 2);
    // rank 1 acquires them in the opposite order. A blocking flush
    // while holding the first lock pins each rank inside its epoch.
    let mut p = IrProgram::new(3, WIN);
    for (me, first, second) in [(0usize, 1usize, 2usize), (1, 2, 1)] {
        p.ranks[me].extend([
            Stmt::Lock { win: 0, target: first, exclusive: true, nonblocking: false },
            Stmt::Put { win: 0, target: first, disp: 0, len: 8 },
            Stmt::Flush { win: 0, target: Some(first), local_only: false, close: Close::Blocking },
            Stmt::Lock { win: 0, target: second, exclusive: true, nonblocking: false },
            Stmt::Put { win: 0, target: second, disp: 8, len: 8 },
            Stmt::Unlock { win: 0, target: second, close: Close::Blocking },
            Stmt::Unlock { win: 0, target: first, close: Close::Blocking },
        ]);
    }
    assert!(has_code(&analyze(&p), Code::E014));
}

#[test]
fn e014_near_miss_consistent_order() {
    // Both ranks acquire in the same global order: no inversion.
    let mut p = IrProgram::new(3, WIN);
    for me in [0usize, 1] {
        p.ranks[me].extend([
            Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
            Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
            Stmt::Flush { win: 0, target: Some(1), local_only: false, close: Close::Blocking },
            Stmt::Lock { win: 0, target: 2, exclusive: true, nonblocking: false },
            Stmt::Put { win: 0, target: 2, disp: 8, len: 8 },
            Stmt::Unlock { win: 0, target: 2, close: Close::Blocking },
            Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
        ]);
    }
    assert_clean(&p);
}

#[test]
fn e014_near_miss_shared_locks_do_not_conflict() {
    // Opposite acquisition orders, but every lock is shared: grants
    // never exclude each other, so no deadlock and no report.
    let mut p = IrProgram::new(3, WIN);
    for (me, first, second) in [(0usize, 1usize, 2usize), (1, 2, 1)] {
        p.ranks[me].extend([
            Stmt::Lock { win: 0, target: first, exclusive: false, nonblocking: false },
            Stmt::Put { win: 0, target: first, disp: 0, len: 8 },
            Stmt::Flush { win: 0, target: Some(first), local_only: false, close: Close::Blocking },
            Stmt::Lock { win: 0, target: second, exclusive: false, nonblocking: false },
            Stmt::Put { win: 0, target: second, disp: 8, len: 8 },
            Stmt::Unlock { win: 0, target: second, close: Close::Blocking },
            Stmt::Unlock { win: 0, target: first, close: Close::Blocking },
        ]);
    }
    assert_clean(&p);
}

#[test]
fn e014_near_miss_flush_local_does_not_establish() {
    // The ABBA shape, but the in-epoch flush is `flush_local`: it
    // completes locally only, forces no lock acquisition (the epoch stays
    // lazily deferred, §VII.B), and so never pins the first hold — no
    // held→wanted edge, no inversion.
    let mut p = IrProgram::new(3, WIN);
    for (me, first, second) in [(0usize, 1usize, 2usize), (1, 2, 1)] {
        p.ranks[me].extend([
            Stmt::Lock { win: 0, target: first, exclusive: true, nonblocking: false },
            Stmt::Put { win: 0, target: first, disp: 0, len: 8 },
            Stmt::Flush { win: 0, target: Some(first), local_only: true, close: Close::Blocking },
            Stmt::Lock { win: 0, target: second, exclusive: true, nonblocking: false },
            Stmt::Put { win: 0, target: second, disp: 8, len: 8 },
            Stmt::Unlock { win: 0, target: second, close: Close::Blocking },
            Stmt::Unlock { win: 0, target: first, close: Close::Blocking },
        ]);
    }
    assert_clean(&p);
}

#[test]
fn e014_near_miss_unestablished_lazy_hold() {
    // Opposite acquisition orders with *no* flush at all: both first
    // locks are lazily held (acquisition deferred to the epoch's own
    // unlock), so while a rank blocks in its second epoch the first lock
    // is not actually granted anywhere — no ABBA.
    let mut p = IrProgram::new(3, WIN);
    for (me, first, second) in [(0usize, 1usize, 2usize), (1, 2, 1)] {
        p.ranks[me].extend([
            Stmt::Lock { win: 0, target: first, exclusive: true, nonblocking: false },
            Stmt::Put { win: 0, target: first, disp: 0, len: 8 },
            Stmt::Lock { win: 0, target: second, exclusive: true, nonblocking: false },
            Stmt::Put { win: 0, target: second, disp: 8, len: 8 },
            Stmt::Unlock { win: 0, target: second, close: Close::Blocking },
            Stmt::Unlock { win: 0, target: first, close: Close::Blocking },
        ]);
    }
    assert_clean(&p);
}

#[test]
fn e014_nonblocking_full_iflush_establishes_the_hold() {
    // A *nonblocking* full flush still forces acquisition of the covered
    // lazily-held lock (it initiates the grant request), so the ABBA
    // shape with iflush + a later blocking unlock is still an inversion.
    let mut p = IrProgram::new(3, WIN);
    for (me, first, second) in [(0usize, 1usize, 2usize), (1, 2, 1)] {
        p.ranks[me].extend([
            Stmt::Lock { win: 0, target: first, exclusive: true, nonblocking: false },
            Stmt::Put { win: 0, target: first, disp: 0, len: 8 },
            Stmt::Flush {
                win: 0,
                target: Some(first),
                local_only: false,
                close: Close::Nonblocking,
            },
            Stmt::Lock { win: 0, target: second, exclusive: true, nonblocking: false },
            Stmt::Put { win: 0, target: second, disp: 8, len: 8 },
            Stmt::Unlock { win: 0, target: second, close: Close::Blocking },
            Stmt::Unlock { win: 0, target: first, close: Close::Blocking },
            Stmt::WaitAll,
        ]);
    }
    assert!(has_code(&analyze(&p), Code::E014));
}

// ---------------------------------------------------------------- E015

#[test]
fn e015_start_without_exposure() {
    // Rank 0 starts toward rank 1, which never posts: the blocking
    // Complete waits on a grant that will never arrive.
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Start { win: 0, group: vec![1] },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Complete { win: 0, close: Close::Blocking },
    ]);
    assert!(has_code(&analyze(&p), Code::E015));
}

#[test]
fn e015_near_miss_matching_post() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Start { win: 0, group: vec![1] },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Complete { win: 0, close: Close::Blocking },
    ]);
    p.ranks[1].extend([
        Stmt::Post { win: 0, group: vec![0] },
        Stmt::WaitEpoch { win: 0, close: Close::Blocking },
    ]);
    assert_clean(&p);
}

#[test]
fn e015_post_without_completing_origin() {
    // Rank 1 exposes to rank 0 but rank 0 never starts/completes: the
    // blocking WaitEpoch waits on a done message that never comes.
    let mut p = IrProgram::new(2, WIN);
    p.ranks[1].extend([
        Stmt::Post { win: 0, group: vec![0] },
        Stmt::WaitEpoch { win: 0, close: Close::Blocking },
    ]);
    assert!(has_code(&analyze(&p), Code::E015));
}

// ---------------------------------------------------------------- E016

#[test]
fn e016_fence_participation_mismatch() {
    // Rank 0 calls a second fence that rank 1 never matches; the
    // fence plane is collective per window, so rank 0 blocks forever.
    let mut p = IrProgram::new(2, WIN);
    fence_all(&mut p, Close::Blocking);
    p.ranks[0].push(Stmt::Put { win: 0, target: 1, disp: 0, len: 8 });
    fence_all(&mut p, Close::Blocking);
    p.ranks[0].push(Stmt::Fence { win: 0, close: Close::Blocking });
    let diags = analyze(&p);
    assert!(has_code(&diags, Code::E016), "{diags:?}");
}

#[test]
fn e016_near_miss_equal_fence_counts() {
    let mut p = IrProgram::new(2, WIN);
    fence_all(&mut p, Close::Blocking);
    p.ranks[0].push(Stmt::Put { win: 0, target: 1, disp: 0, len: 8 });
    fence_all(&mut p, Close::Blocking);
    assert_clean(&p);
}

#[test]
fn e016_per_window_fence_planes_are_independent() {
    // Equal fence counts on each window individually — even though the
    // two windows' counts differ from each other — is legal.
    let mut p = IrProgram::new(2, WIN);
    let w1 = p.add_window(WIN);
    fence_all(&mut p, Close::Blocking);
    p.ranks[0].push(Stmt::Put { win: 0, target: 1, disp: 0, len: 8 });
    fence_all(&mut p, Close::Blocking);
    for r in 0..2 {
        p.ranks[r].push(Stmt::Fence { win: w1, close: Close::Blocking });
        p.ranks[r].push(Stmt::Fence { win: w1, close: Close::Blocking });
    }
    assert_clean(&p);
}

// ---------------------------------------------------------------- E017

#[test]
fn e017_wait_on_never_completing_request() {
    // The nonblocking Complete's request can never finish (no
    // exposure), so the WaitAll blocks forever — and unlike E015's
    // blocking form, the blame lands on the wait site.
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Start { win: 0, group: vec![1] },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Complete { win: 0, close: Close::Nonblocking },
        Stmt::WaitAll,
    ]);
    assert!(has_code(&analyze(&p), Code::E017));
}

#[test]
fn e017_near_miss_exposure_present() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Start { win: 0, group: vec![1] },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Complete { win: 0, close: Close::Nonblocking },
        Stmt::WaitAll,
    ]);
    p.ranks[1].extend([
        Stmt::Post { win: 0, group: vec![0] },
        Stmt::WaitEpoch { win: 0, close: Close::Blocking },
    ]);
    assert_clean(&p);
}

// ---------------------------------------------------------------- E018

/// Rank 0 spins on a fetched flag slot; rank 1 publishes `published`
/// into it with an atomic replace. The spin expects `expect`.
fn value_spin(published: u64, expect: u64) -> IrProgram {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::LockAll { win: 0 },
        Stmt::ReadValue { win: 0, target: 0, disp: 0, kind: FetchKind::FetchOp(ReduceOp::NoOp), local: 0 },
        Stmt::SpinUntil { local: 0, expect },
        Stmt::UnlockAll { win: 0, close: Close::Blocking },
    ]);
    p.ranks[1].extend([
        Stmt::Lock { win: 0, target: 0, exclusive: false, nonblocking: false },
        Stmt::AccVal { win: 0, target: 0, disp: 0, op: ReduceOp::Replace, val: published },
        Stmt::Unlock { win: 0, target: 0, close: Close::Blocking },
    ]);
    p
}

#[test]
fn e018_spin_on_unwritable_value() {
    // The only write anywhere deposits 1; the spin demands 2. No
    // schedule can satisfy it, and the witness names the doomed value.
    let diags = analyze(&value_spin(1, 2));
    assert!(has_code(&diags, Code::E018), "{diags:?}");
    let d = diags.iter().find(|d| d.code == Code::E018).unwrap();
    assert_eq!(d.rank, 0, "{d:?}");
    assert!(d.detail.contains("0x2"), "{d:?}");
}

#[test]
fn e018_near_miss_published_value_matches() {
    // Same shape, but the publish matches the expectation: satisfiable.
    assert_clean(&value_spin(2, 2));
}

#[test]
fn e018_near_miss_unknown_operand_write_suppresses() {
    // A non-Replace accumulate's result is unmodeled (⊤ in the value
    // domain): it could produce anything, including the expected flag,
    // so no E018 — the domain over-approximates and never cries wolf.
    let mut p = value_spin(0, 0xDEAD);
    p.ranks[1][1] = Stmt::AccVal { win: 0, target: 0, disp: 0, op: ReduceOp::Sum, val: 1 };
    assert_clean(&p);
}

#[test]
fn e018_own_post_spin_write_cannot_satisfy() {
    // The spinner itself writes the expected value — but only *after*
    // the spin, which blocks its host first. Still doomed.
    let mut p = value_spin(1, 2);
    p.ranks[0].insert(
        3,
        Stmt::AccVal { win: 0, target: 0, disp: 0, op: ReduceOp::Replace, val: 2 },
    );
    assert!(has_code(&analyze(&p), Code::E018));
}

#[test]
fn e018_zero_expectation_is_satisfied_by_init() {
    // Windows are zero-initialized: spinning for 0 needs no writer.
    let mut p = value_spin(0, 0);
    p.ranks[1].clear();
    assert_clean(&p);
}

// ------------------------------------------------- flush discharge

#[test]
fn e008_iflush_never_discharged() {
    // A nonblocking flush leaves a request that nothing waits for and
    // no later blocking flush covers.
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: false, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Flush { win: 0, target: Some(1), local_only: false, close: Close::Nonblocking },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    assert!(has_code(&analyze(&p), Code::E008));
}

#[test]
fn e008_near_miss_blocking_flush_discharges_iflush() {
    // A later blocking flush on the same window and target subsumes the
    // outstanding iflush request (age-stamp rule): no E008.
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: false, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Flush { win: 0, target: Some(1), local_only: false, close: Close::Nonblocking },
        Stmt::Flush { win: 0, target: Some(1), local_only: false, close: Close::Blocking },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    assert_clean(&p);
}

#[test]
fn e008_near_miss_flush_all_discharges_targeted_iflush() {
    // A blocking flush_all covers every target on the window.
    let mut p = IrProgram::new(3, WIN);
    p.ranks[0].extend([
        Stmt::LockAll { win: 0 },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Flush { win: 0, target: Some(1), local_only: false, close: Close::Nonblocking },
        Stmt::Put { win: 0, target: 2, disp: 8, len: 8 },
        Stmt::Flush { win: 0, target: Some(2), local_only: false, close: Close::Nonblocking },
        Stmt::Flush { win: 0, target: None, local_only: false, close: Close::Blocking },
        Stmt::UnlockAll { win: 0, close: Close::Blocking },
    ]);
    assert_clean(&p);
}

#[test]
fn local_flush_does_not_discharge_remote_iflush() {
    // flush_local only guarantees local completion; the remote iflush
    // request remains outstanding.
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: false, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Flush { win: 0, target: Some(1), local_only: false, close: Close::Nonblocking },
        Stmt::Flush { win: 0, target: Some(1), local_only: true, close: Close::Blocking },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    assert!(has_code(&analyze(&p), Code::E008));
}

#[test]
fn flush_outside_passive_epoch_is_e004() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].push(Stmt::Flush { win: 0, target: Some(1), local_only: false, close: Close::Blocking });
    assert!(has_code(&analyze(&p), Code::E004));
}

// ------------------------------------------------- race detector (HB)

fn rec(rank: usize, peer: usize, plane: Plane, event: SyncEvent) -> SyncRecord {
    SyncRecord {
        time: Default::default(),
        rank: Rank(rank),
        peer: Rank(peer),
        win: WinId(0),
        plane,
        event,
    }
}

#[test]
fn unsynchronized_conflicting_access_races() {
    // Rank 1 writes rank 0's window; rank 0 reads the same bytes locally
    // with no intervening synchronization edge.
    let trace = vec![
        rec(1, 0, Plane::Lock, SyncEvent::DataIssued {
            epoch: 0,
            disp: 0,
            len: 8,
            access: AccessKind::Write,
        }),
        rec(0, 0, Plane::Lock, SyncEvent::LocalAccess {
            disp: 4,
            len: 8,
            access: AccessKind::Read,
        }),
    ];
    let races = detect_races_in(&trace, 2);
    assert_eq!(races.len(), 1, "expected exactly one race: {races:?}");
    assert_eq!((races[0].lo, races[0].hi), (4, 8));
}

#[test]
fn done_edge_orders_the_access() {
    // Same accesses, but the write's epoch closure (unlock) is applied at
    // rank 0 before the local read: complete happens-before edge, no race.
    let trace = vec![
        rec(1, 0, Plane::Lock, SyncEvent::DataIssued {
            epoch: 0,
            disp: 0,
            len: 8,
            access: AccessKind::Write,
        }),
        rec(1, 0, Plane::Lock, SyncEvent::EpochDoneSent { epoch: 0, id: 0 }),
        rec(0, 1, Plane::Lock, SyncEvent::EpochDoneApplied { id: 0 }),
        rec(0, 0, Plane::Lock, SyncEvent::LocalAccess {
            disp: 4,
            len: 8,
            access: AccessKind::Read,
        }),
    ];
    assert!(detect_races_in(&trace, 2).is_empty());
}

#[test]
fn read_read_overlap_is_not_a_race() {
    let trace = vec![
        rec(1, 0, Plane::Lock, SyncEvent::DataIssued {
            epoch: 0,
            disp: 0,
            len: 8,
            access: AccessKind::Read,
        }),
        rec(2, 0, Plane::Lock, SyncEvent::DataIssued {
            epoch: 0,
            disp: 0,
            len: 8,
            access: AccessKind::Read,
        }),
    ];
    assert!(detect_races_in(&trace, 3).is_empty());
}

#[test]
fn grant_edge_orders_lock_epochs() {
    // Rank 1 writes under a lock, unlocks (done edge to rank 0's lock
    // manager), then rank 2's lock grant — carrying rank 0's knowledge —
    // orders rank 2's overlapping write after rank 1's.
    let trace = vec![
        rec(1, 0, Plane::Lock, SyncEvent::DataIssued {
            epoch: 0,
            disp: 0,
            len: 8,
            access: AccessKind::Write,
        }),
        rec(1, 0, Plane::Lock, SyncEvent::EpochDoneSent { epoch: 0, id: 0 }),
        rec(0, 1, Plane::Lock, SyncEvent::EpochDoneApplied { id: 0 }),
        rec(0, 2, Plane::Lock, SyncEvent::GrantSent { id: 1 }),
        rec(2, 0, Plane::Lock, SyncEvent::GrantApplied { id: 1 }),
        rec(2, 0, Plane::Lock, SyncEvent::DataIssued {
            epoch: 1,
            disp: 0,
            len: 8,
            access: AccessKind::Write,
        }),
    ];
    assert!(detect_races_in(&trace, 3).is_empty());
}

// ------------------------------------------------- W-series (slack pass)
//
// The advisory codes are emitted only by `analyze_slack`; every positive
// program here must additionally be E-clean, because the rewriter's
// whole contract is "relax programs that are already correct".

fn slack_diags(p: &IrProgram) -> Vec<mpisim_analyze::Diagnostic> {
    assert_clean(p);
    analyze_slack(p).diags
}

#[test]
fn w001_redundant_blocking_flush() {
    // Nothing consumes the flush's guarantee before the epoch's own
    // unlock completes everything anyway.
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Flush { win: 0, target: Some(1), local_only: false, close: Close::Blocking },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    let diags = slack_diags(&p);
    assert!(has_code(&diags, Code::W001), "{diags:?}");
}

#[test]
fn w001_near_miss_flush_discharges_full_iflush() {
    // The blocking flush discharges an earlier full iflush request (the
    // E008 age-stamp rule): its completion IS consumed — Required, no
    // W001.
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Flush { win: 0, target: Some(1), local_only: false, close: Close::Nonblocking },
        Stmt::Flush { win: 0, target: Some(1), local_only: false, close: Close::Blocking },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    let diags = slack_diags(&p);
    assert!(!has_code(&diags, Code::W001), "{diags:?}");
}

#[test]
fn w001_localize_when_only_local_requests_ride() {
    // Only a local-only iflush rides on the blocking flush: it cannot be
    // elided (the request must be discharged) but can weaken to
    // flush_local. Still W001, with a localize finding.
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Flush { win: 0, target: Some(1), local_only: true, close: Close::Nonblocking },
        Stmt::Flush { win: 0, target: Some(1), local_only: false, close: Close::Blocking },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    assert_clean(&p);
    let report = analyze_slack(&p);
    assert!(has_code(&report.diags, Code::W001), "{:?}", report.diags);
    let f = report
        .findings
        .iter()
        .find(|f| f.rank == 0 && f.step == 3)
        .expect("the blocking flush must be classified");
    assert_eq!(f.class, SlackClass::Relaxable);
    assert!(f.localize, "must be weakened to flush_local, not elided: {f:?}");
}

#[test]
fn w002_fence_close_relaxable() {
    // No dependent use of the covered put before end of program: the
    // closing fence only serializes the host.
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Barrier,
    ]);
    p.ranks[1].extend([
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Barrier,
    ]);
    let diags = slack_diags(&p);
    assert!(
        diags.iter().any(|d| d.code == Code::W002 && d.rank == 0 && d.step == Some(2)),
        "{diags:?}"
    );
}

#[test]
fn w002_near_miss_conflicting_barrier_pins_the_fence() {
    // Same shape, but rank 1 reads the published bytes under a lock
    // after the barrier: the barrier is the publication point, and it
    // follows the fence with zero slack — Required, no W002 for rank 0.
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Barrier,
    ]);
    p.ranks[1].extend([
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Barrier,
        Stmt::Lock { win: 0, target: 1, exclusive: false, nonblocking: false },
        Stmt::Get { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    let diags = slack_diags(&p);
    assert!(
        !diags.iter().any(|d| d.code == Code::W002 && d.rank == 0),
        "{diags:?}"
    );
}

#[test]
fn w003_unlock_relaxable() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
        Stmt::Barrier,
    ]);
    p.ranks[1].push(Stmt::Barrier);
    let diags = slack_diags(&p);
    assert!(
        diags.iter().any(|d| d.code == Code::W003 && d.rank == 0 && d.step == Some(2)),
        "{diags:?}"
    );
}

#[test]
fn w003_near_miss_barrier_publishes_with_zero_slack() {
    // The barrier immediately after the unlock publishes the put to a
    // conflicting reader on rank 1: the dependent use is adjacent, so
    // there is no room to overlap anything — the unlock stays Required.
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
        Stmt::Barrier,
    ]);
    p.ranks[1].extend([
        Stmt::Barrier,
        Stmt::Lock { win: 0, target: 1, exclusive: false, nonblocking: false },
        Stmt::Get { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    assert_clean(&p);
    let report = analyze_slack(&p);
    let f = report
        .findings
        .iter()
        .find(|f| f.rank == 0 && f.step == 2)
        .expect("the unlock must be classified");
    assert_eq!(f.class, SlackClass::Required, "{f:?}");
    assert!(
        !report.diags.iter().any(|d| d.code == Code::W003 && d.rank == 0),
        "{:?}",
        report.diags
    );
}

#[test]
fn w004_over_wide_start_group() {
    let mut p = IrProgram::new(3, WIN);
    p.ranks[0].extend([
        Stmt::Start { win: 0, group: vec![1, 2] },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Complete { win: 0, close: Close::Blocking },
    ]);
    for r in 1..3 {
        p.ranks[r].extend([
            Stmt::Post { win: 0, group: vec![0] },
            Stmt::WaitEpoch { win: 0, close: Close::Blocking },
        ]);
    }
    let diags = slack_diags(&p);
    assert!(
        diags.iter().any(|d| d.code == Code::W004 && d.rank == 0 && d.step == Some(0)),
        "{diags:?}"
    );
}

#[test]
fn w004_near_miss_every_target_used() {
    let mut p = IrProgram::new(3, WIN);
    p.ranks[0].extend([
        Stmt::Start { win: 0, group: vec![1, 2] },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Put { win: 0, target: 2, disp: 0, len: 8 },
        Stmt::Complete { win: 0, close: Close::Blocking },
    ]);
    for r in 1..3 {
        p.ranks[r].extend([
            Stmt::Post { win: 0, group: vec![0] },
            Stmt::WaitEpoch { win: 0, close: Close::Blocking },
        ]);
    }
    let diags = slack_diags(&p);
    assert!(!has_code(&diags, Code::W004), "{diags:?}");
}

#[test]
fn w005_dead_exposure_epoch() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Start { win: 0, group: vec![1] },
        Stmt::Complete { win: 0, close: Close::Blocking },
    ]);
    p.ranks[1].extend([
        Stmt::Post { win: 0, group: vec![0] },
        Stmt::WaitEpoch { win: 0, close: Close::Blocking },
    ]);
    let diags = slack_diags(&p);
    assert!(
        diags.iter().any(|d| d.code == Code::W005 && d.rank == 1 && d.step == Some(0)),
        "{diags:?}"
    );
}

#[test]
fn w005_near_miss_origin_operates_toward_exposer() {
    let mut p = IrProgram::new(2, WIN);
    p.ranks[0].extend([
        Stmt::Start { win: 0, group: vec![1] },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Complete { win: 0, close: Close::Blocking },
    ]);
    p.ranks[1].extend([
        Stmt::Post { win: 0, group: vec![0] },
        Stmt::WaitEpoch { win: 0, close: Close::Blocking },
    ]);
    let diags = slack_diags(&p);
    assert!(!has_code(&diags, Code::W005), "{diags:?}");
}

#[test]
fn reorder_pin_blocks_every_relaxation() {
    // With reorder flags asserted, a rank whose epochs issue conflicting
    // overlapping accesses depends on its blocking syncs to keep reorder
    // regions apart: everything stays Required, nothing is advisory.
    let mut p = IrProgram::new(2, WIN);
    p.reorder = true;
    for me in 0..2 {
        let peer = 1 - me;
        p.ranks[me].extend([
            Stmt::Fence { win: 0, close: Close::Blocking },
            Stmt::Put { win: 0, target: peer, disp: 0, len: 8 },
            Stmt::Fence { win: 0, close: Close::Blocking },
            Stmt::Put { win: 0, target: peer, disp: 0, len: 8 },
            Stmt::Fence { win: 0, close: Close::Blocking },
            Stmt::Barrier,
        ]);
    }
    assert_clean(&p);
    let report = analyze_slack(&p);
    assert!(report.diags.is_empty(), "{:?}", report.diags);
    assert!(
        report.findings.iter().all(|f| f.class == SlackClass::Required),
        "{:?}",
        report.findings
    );
}

#[test]
fn slack_catalog_covers_every_advisory_code() {
    use mpisim_analyze::slack_catalog_cases;
    let cases = slack_catalog_cases();
    for code in Code::ADVISORY {
        let covered = cases.iter().any(|(c, p)| {
            *c == code && analyze(p).is_empty() && has_code(&analyze_slack(p).diags, code)
        });
        assert!(covered, "no E-clean slack catalog case triggers {code}");
    }
}
