//! Synchronization-slack dataflow pass: find over-synchronization
//! statically (advisory codes W001–W005).
//!
//! The paper's payoff is that epoch synchronization is usually *stronger
//! than the program needs*: a blocking fence/complete/wait/unlock parks
//! the host even when nothing local depends on remote completion yet, and
//! the nonblocking forms reclaim that slack as communication/computation
//! overlap (§V). This pass walks every rank with a per-(rank, window)
//! byte-interval dataflow and, for each **blocking synchronization
//! point** (fence phase close, `complete`, `wait`, `unlock`,
//! `unlock_all`, blocking flush), computes the *earliest dependent use*
//! of the operations the sync point completes:
//!
//! * a later `get` by the same rank overlapping covered **written** bytes
//!   (a value dependence — the get must observe the completed put);
//! * a `barrier` when another rank's accesses conflict with the covered
//!   bytes (the barrier publishes completion cross-rank, so the wait must
//!   happen before it);
//! * an existing `waitall` (a free deferred-wait landing point);
//! * end of program.
//!
//! Each sync point is then classified on the slack lattice:
//!
//! * **Elidable** — the guarantee is never consumed at all (only
//!   blocking flushes qualify: closes are structurally required);
//! * **Relaxable** — the blocking call can become its nonblocking form
//!   with the wait deferred to the computed wait point (fence→ifence,
//!   eager wait→deferred wait; a flush that only discharges local-only
//!   `iflush` requests is weakened to `flush_local` per the E008
//!   age-stamp rule: the later local stamp completes everything the
//!   earlier local-only request covered);
//! * **Required** — there is zero slack (the dependent use is immediate),
//!   the flush discharges a *full* `iflush` request (remote completion
//!   someone waits on), or reorder flags are on and this rank has
//!   conflicting same-origin accesses in different epochs, where removing
//!   a blocking close could merge reorder regions into an E009 violation
//!   (the reorder pin).
//!
//! Soundness leans on the engine's own design: nonblocking epoch closes
//! preserve epoch ordering per target (the conformance matrix proves the
//! blocking↔nonblocking equivalence for every generated program), so the
//! only things a relaxation can lose are (a) the cross-rank publication
//! point — guarded by the barrier rule, (b) same-origin value
//! dependences — guarded by the get rule, and (c) the region break a
//! blocking sync contributes under reorder flags — guarded by the
//! reorder pin. Flush *elision* removes a guarantee outright, so it
//! additionally requires that no dependent use exists before the covered
//! epoch's own close (which re-establishes completion) and that no
//! outstanding `iflush` request rides on the discharge.
//!
//! Value-dependent statements participate conservatively: a
//! [`Stmt::ReadValue`] is a data access like `get` (a value dependence
//! on covered written bytes), and a [`Stmt::SpinUntil`] is a hard
//! dependent-use pin — the spin re-reads the window until a peer's
//! write lands, so every blocking sync whose slack region would cross
//! it must complete first.
//!
//! The W-series is advisory: it is emitted only by [`analyze_slack`],
//! never by [`crate::analyze`], so "analyzer-clean" (the E-codes)
//! keeps meaning exactly what it meant. The companion rewriter
//! ([`crate::rewrite`]) applies W001–W003 mechanically and shrinks
//! W004 over-wide start groups symmetrically on both sides of the
//! cross-rank matching (the recorded [`GroupShrink`] pairs); W005
//! (dead exposure) stays report-only because removing an exposure
//! epoch outright changes collective matching asymmetrically.

use std::collections::BTreeMap;

use crate::diag::{Code, Diagnostic};
use crate::ir::{IrProgram, Stmt};

/// Classification of one blocking synchronization point on the slack
/// lattice (`Elidable ⊏ Relaxable ⊏ Required`: each step up keeps
/// strictly more of the original synchronization).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SlackClass {
    /// The guarantee is never consumed: remove the call outright.
    Elidable,
    /// The call can become its nonblocking form (or `flush_local`), with
    /// completion deferred to the computed wait point.
    Relaxable,
    /// Must stay blocking.
    Required,
}

/// Which blocking call a [`SlackFinding`] classifies.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SyncKind {
    /// A fence call closing a previous phase (never the first call).
    FenceClose,
    /// `MPI_WIN_COMPLETE`.
    Complete,
    /// `MPI_WIN_WAIT` (exposure close).
    WaitEpoch,
    /// `MPI_WIN_UNLOCK`.
    Unlock,
    /// `MPI_WIN_UNLOCK_ALL`.
    UnlockAll,
    /// A blocking `MPI_WIN_FLUSH` family call.
    Flush,
}

/// One classified blocking synchronization point, with the provenance the
/// rewriter and the W-lints need.
#[derive(Clone, Debug)]
pub struct SlackFinding {
    /// Rank whose statement is classified.
    pub rank: usize,
    /// Statement index of the sync point in that rank's program.
    pub step: usize,
    /// Window the call synchronizes.
    pub win: usize,
    /// Call kind.
    pub kind: SyncKind,
    /// The classification.
    pub class: SlackClass,
    /// Relaxable closes: original statement index the deferred wait must
    /// land **before** (`None` = defer to end of program).
    pub wait_before: Option<usize>,
    /// Relaxable closes: the wait point is a dependent use, so the
    /// rewriter must insert a `WaitAll` there (`false` when the wait
    /// point is an existing `WaitAll` or end of program).
    pub insert_wait: bool,
    /// Relaxable flushes only: weaken to `flush_local` (the flush
    /// discharges local-only `iflush` requests) instead of eliding.
    pub localize: bool,
    /// Total bytes of the operations this sync point completes (the sum
    /// of the covered intervals) — the size input of the rewriter's
    /// virtual-time cost model.
    pub covered_bytes: usize,
    /// Witness: the dependent use / discharge / pin justifying the
    /// classification.
    pub why: String,
}

/// One mechanizable W004 group shrink: drop `target` from `origin`'s
/// start group at `start_step`, and drop `origin` from the matching
/// post's group at (`target`, `post_step`). Shrinking both sides of
/// one matched pair keeps every later k-th-occurrence pairing between
/// the two ranks aligned, so the rewrite never perturbs cross-rank
/// collective matching. Pairs whose matching post the target's program
/// lacks are not recorded (that is E015's business, not a rewrite).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupShrink {
    /// Rank whose start group is over-wide.
    pub origin: usize,
    /// Window of the matched epoch pair.
    pub win: usize,
    /// Statement index of the `start` in `origin`'s program.
    pub start_step: usize,
    /// The never-addressed target to drop from the start group.
    pub target: usize,
    /// Statement index of the matching `post` in `target`'s program.
    pub post_step: usize,
}

/// The slack pass result: every classified sync point plus the advisory
/// diagnostics (W001–W005).
#[derive(Debug, Default)]
pub struct SlackReport {
    /// Every blocking sync point, in per-rank walk order.
    pub findings: Vec<SlackFinding>,
    /// Advisory W-series diagnostics.
    pub diags: Vec<Diagnostic>,
    /// Mechanizable W004 group shrinks (symmetric start/post pairs).
    pub shrinks: Vec<GroupShrink>,
}

/// One byte interval covered by a sync point (window implicit).
#[derive(Clone, Debug)]
struct Iv {
    target: usize,
    lo: usize,
    hi: usize,
    write: bool,
}

/// One data access, tagged with the per-rank ordinal of its covering
/// epoch (for the reorder pin's cross-epoch conflict check).
struct RankAccess {
    win: usize,
    target: usize,
    lo: usize,
    hi: usize,
    write: bool,
    epoch: usize,
}

fn ranges_overlap(alo: usize, ahi: usize, blo: usize, bhi: usize) -> bool {
    alo.max(blo) < ahi.min(bhi)
}

/// Collect every rank's data accesses with epoch ordinals, mirroring the
/// engine's op-routing (single-target lock → lock_all → GATS → fence).
fn collect_accesses(p: &IrProgram) -> Vec<Vec<RankAccess>> {
    let mut all = Vec::with_capacity(p.n_ranks);
    for stmts in &p.ranks {
        let mut out = Vec::new();
        let mut ord = 0usize;
        // Per window: open-epoch ordinals.
        let mut fence_open: BTreeMap<usize, usize> = BTreeMap::new();
        let mut gats: BTreeMap<usize, (Vec<usize>, usize)> = BTreeMap::new();
        let mut locks: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let mut lock_all: BTreeMap<usize, usize> = BTreeMap::new();
        for stmt in stmts {
            match stmt {
                Stmt::Fence { win, .. } => {
                    ord += 1;
                    fence_open.insert(*win, ord);
                }
                Stmt::Start { win, group } => {
                    ord += 1;
                    gats.insert(*win, (group.clone(), ord));
                }
                Stmt::Complete { win, .. } => {
                    gats.remove(win);
                }
                Stmt::Lock { win, target, .. } => {
                    ord += 1;
                    locks.insert((*win, *target), ord);
                }
                Stmt::Unlock { win, target, .. } => {
                    locks.remove(&(*win, *target));
                }
                Stmt::LockAll { win } => {
                    ord += 1;
                    lock_all.insert(*win, ord);
                }
                Stmt::UnlockAll { win, .. } => {
                    lock_all.remove(win);
                }
                Stmt::Put { .. }
                | Stmt::Get { .. }
                | Stmt::Acc { .. }
                | Stmt::ReadValue { .. }
                | Stmt::AccVal { .. } => {
                    let (win, target, lo, hi, write) = match stmt {
                        Stmt::Put { win, target, disp, len } => {
                            (*win, *target, *disp, disp + len, true)
                        }
                        Stmt::Get { win, target, disp, len } => {
                            (*win, *target, *disp, disp + len, false)
                        }
                        Stmt::Acc { win, target, disp, len, .. } => {
                            (*win, *target, *disp, disp + len, true)
                        }
                        Stmt::ReadValue { win, target, disp, kind, .. } => {
                            (*win, *target, *disp, disp + 8, kind.write_op().is_some())
                        }
                        Stmt::AccVal { win, target, disp, .. } => {
                            (*win, *target, *disp, disp + 8, true)
                        }
                        _ => unreachable!(),
                    };
                    let epoch = locks
                        .get(&(win, target))
                        .copied()
                        .or_else(|| lock_all.get(&win).copied())
                        .or_else(|| {
                            gats.get(&win)
                                .filter(|(g, _)| g.contains(&target))
                                .map(|&(_, o)| o)
                        })
                        .or_else(|| fence_open.get(&win).copied());
                    if let Some(epoch) = epoch {
                        out.push(RankAccess { win, target, lo, hi, write, epoch });
                    }
                }
                _ => {}
            }
        }
        all.push(out);
    }
    all
}

/// The reorder pin: with reorder flags on, a rank that issues conflicting
/// overlapping accesses to one (window, target) from *different* epochs
/// depends on blocking syncs to break its reorder-concurrency regions
/// (E009). Relaxing any of its syncs could merge regions, so every sync
/// of that rank is pinned Required. (Blocking syncs serialize *all* of a
/// rank's windows — `sync_all` — hence the pin is per rank, not per
/// window.)
fn reorder_pinned(p: &IrProgram, accesses: &[Vec<RankAccess>]) -> Vec<bool> {
    let mut pinned = vec![false; p.n_ranks];
    if !p.reorder {
        return pinned;
    }
    for (rank, accs) in accesses.iter().enumerate() {
        'outer: for (i, a) in accs.iter().enumerate() {
            for b in &accs[i + 1..] {
                if a.win == b.win
                    && a.target == b.target
                    && a.epoch != b.epoch
                    && (a.write || b.write)
                    && ranges_overlap(a.lo, a.hi, b.lo, b.hi)
                {
                    pinned[rank] = true;
                    break 'outer;
                }
            }
        }
    }
    pinned
}

/// Does any *other* rank's access conflict with the covered intervals?
/// (The barrier rule: a barrier after the sync publishes completion to
/// conflicting peers, so the deferred wait must land before it.)
fn cross_conflict(
    rank: usize,
    win: usize,
    covered: &[Iv],
    accesses: &[Vec<RankAccess>],
) -> Option<String> {
    for (r, accs) in accesses.iter().enumerate() {
        if r == rank {
            continue;
        }
        for a in accs {
            if a.win != win {
                continue;
            }
            for iv in covered {
                if a.target == iv.target
                    && (a.write || iv.write)
                    && ranges_overlap(a.lo, a.hi, iv.lo, iv.hi)
                {
                    return Some(format!(
                        "rank {r} conflicts on bytes [{}, {}) of rank {}'s window {win}",
                        a.lo.max(iv.lo),
                        a.hi.min(iv.hi),
                        iv.target
                    ));
                }
            }
        }
    }
    None
}

/// Where the earliest dependent use of `covered` lands after `step`.
enum WaitPoint {
    /// A dependent use or consumption point at statement `at`.
    At { at: usize, insert: bool, why: String },
    /// No dependent use before end of program.
    Eop,
}

/// Forward dataflow scan for an epoch close at `step`: the first value
/// dependence (same-rank overlapping get), cross-rank publication point
/// (barrier with a conflicting peer), or existing `waitall`.
fn scan_close(
    rank: usize,
    step: usize,
    win: usize,
    covered: &[Iv],
    stmts: &[Stmt],
    accesses: &[Vec<RankAccess>],
) -> WaitPoint {
    let barrier_conflict = cross_conflict(rank, win, covered, accesses);
    for (d, stmt) in stmts.iter().enumerate().skip(step + 1) {
        match stmt {
            Stmt::WaitAll => {
                return WaitPoint::At {
                    at: d,
                    insert: false,
                    why: format!("deferred to the existing waitall at stmt {d}"),
                };
            }
            Stmt::Get { win: gw, target, disp, len } if *gw == win => {
                for iv in covered {
                    if iv.write
                        && iv.target == *target
                        && ranges_overlap(*disp, *disp + *len, iv.lo, iv.hi)
                    {
                        return WaitPoint::At {
                            at: d,
                            insert: true,
                            why: format!(
                                "get at stmt {d} reads bytes [{}, {}) of rank {target}'s \
                                 window {win} that the sync completes",
                                disp.max(&iv.lo),
                                (disp + len).min(iv.hi)
                            ),
                        };
                    }
                }
            }
            Stmt::ReadValue { win: gw, target, disp, .. } if *gw == win => {
                for iv in covered {
                    if iv.write
                        && iv.target == *target
                        && ranges_overlap(*disp, *disp + 8, iv.lo, iv.hi)
                    {
                        return WaitPoint::At {
                            at: d,
                            insert: true,
                            why: format!(
                                "value read at stmt {d} fetches bytes [{}, {}) of rank \
                                 {target}'s window {win} that the sync completes",
                                disp.max(&iv.lo),
                                (disp + 8).min(iv.hi)
                            ),
                        };
                    }
                }
            }
            Stmt::SpinUntil { .. } => {
                // A value-dependent spin re-reads the window until a
                // peer's write lands: conservative hard pin — the sync
                // must complete before the spin starts.
                return WaitPoint::At {
                    at: d,
                    insert: true,
                    why: format!(
                        "value-dependent spin at stmt {d} re-reads the window until \
                         satisfied; the sync must complete before it"
                    ),
                };
            }
            Stmt::Barrier => {
                if let Some(why) = &barrier_conflict {
                    return WaitPoint::At {
                        at: d,
                        insert: true,
                        why: format!("barrier at stmt {d} publishes completion: {why}"),
                    };
                }
            }
            _ => {}
        }
    }
    WaitPoint::Eop
}

/// Dependent-use scan for a blocking flush: the flush's guarantee is
/// subsumed by the covering epoch's own close, so only uses strictly
/// before `close_at` count against eliding it.
fn scan_flush(
    rank: usize,
    step: usize,
    win: usize,
    close_at: usize,
    covered: &[Iv],
    stmts: &[Stmt],
    accesses: &[Vec<RankAccess>],
) -> Option<String> {
    let barrier_conflict = cross_conflict(rank, win, covered, accesses);
    for (d, stmt) in stmts.iter().enumerate().take(close_at).skip(step + 1) {
        match stmt {
            Stmt::Get { win: gw, target, disp, len } if *gw == win => {
                for iv in covered {
                    if iv.write
                        && iv.target == *target
                        && ranges_overlap(*disp, *disp + *len, iv.lo, iv.hi)
                    {
                        return Some(format!(
                            "get at stmt {d} depends on the flushed bytes before the epoch \
                             closes"
                        ));
                    }
                }
            }
            Stmt::ReadValue { win: gw, target, disp, .. } if *gw == win => {
                for iv in covered {
                    if iv.write
                        && iv.target == *target
                        && ranges_overlap(*disp, *disp + 8, iv.lo, iv.hi)
                    {
                        return Some(format!(
                            "value read at stmt {d} depends on the flushed bytes before \
                             the epoch closes"
                        ));
                    }
                }
            }
            Stmt::SpinUntil { .. } => {
                return Some(format!(
                    "value-dependent spin at stmt {d} depends on window state before the \
                     epoch closes"
                ));
            }
            Stmt::Barrier => {
                if let Some(why) = &barrier_conflict {
                    return Some(format!(
                        "barrier at stmt {d} publishes the flush before the epoch closes: {why}"
                    ));
                }
            }
            _ => {}
        }
    }
    None
}

/// One GATS access-epoch instance (for W004 and the W005 matching).
struct StartShape {
    group: Vec<usize>,
    step: usize,
    /// Ops issued toward each group target inside this epoch.
    ops_toward: BTreeMap<usize, usize>,
}

/// One exposure-epoch instance (for W005 matching).
struct PostShape {
    group: Vec<usize>,
    step: usize,
    /// Per-origin occurrence index among this rank's posts containing
    /// that origin on this window.
    occ: BTreeMap<usize, usize>,
}

/// An outstanding `iflush` request (for the W001 discharge rule). The
/// list is deliberately never pruned at `waitall`: a flush that *would*
/// discharge a request stays conservative (Required/localized) even when
/// a wait consumed the request earlier, which keeps the classification
/// stable under the rewriter's own inserted waits (idempotence).
struct IFlush {
    win: usize,
    target: Option<usize>,
    local_only: bool,
}

/// Run the slack pass. Advisory only: the returned diagnostics use the
/// W-series codes and never overlap [`crate::analyze`]'s E-codes.
pub fn analyze_slack(p: &IrProgram) -> SlackReport {
    let accesses = collect_accesses(p);
    let pinned = reorder_pinned(p, &accesses);
    let mut report = SlackReport::default();

    // Cross-rank shapes for W005, collected during the main walk.
    let mut starts_shape: Vec<BTreeMap<usize, Vec<StartShape>>> = Vec::with_capacity(p.n_ranks);
    let mut posts_shape: Vec<BTreeMap<usize, Vec<PostShape>>> = Vec::with_capacity(p.n_ranks);

    for (rank, stmts) in p.ranks.iter().enumerate() {
        let mut my_starts: BTreeMap<usize, Vec<StartShape>> = BTreeMap::new();
        let mut my_posts: BTreeMap<usize, Vec<PostShape>> = BTreeMap::new();
        let mut posts_toward: BTreeMap<(usize, usize), usize> = BTreeMap::new();

        // Per-window open-epoch op tracking.
        let mut fence_calls: BTreeMap<usize, usize> = BTreeMap::new();
        let mut fence_ops: BTreeMap<usize, Vec<Iv>> = BTreeMap::new();
        let mut gats: BTreeMap<usize, (usize, Vec<Iv>)> = BTreeMap::new(); // win → (start idx, ops)
        let mut locks: BTreeMap<(usize, usize), Vec<Iv>> = BTreeMap::new();
        let mut lock_all: BTreeMap<usize, Vec<Iv>> = BTreeMap::new();
        let mut iflushes: Vec<IFlush> = Vec::new();

        // Classify one blocking epoch close.
        let classify_close = |rank: usize,
                              step: usize,
                              win: usize,
                              kind: SyncKind,
                              covered: &[Iv],
                              report: &mut SlackReport| {
            let covered_bytes: usize = covered.iter().map(|iv| iv.hi - iv.lo).sum();
            if pinned[rank] {
                report.findings.push(SlackFinding {
                    rank,
                    step,
                    win,
                    kind,
                    class: SlackClass::Required,
                    wait_before: None,
                    insert_wait: false,
                    localize: false,
                    covered_bytes,
                    why: "reorder pin: this rank has conflicting same-origin accesses in \
                          different epochs, so blocking syncs must keep breaking reorder \
                          regions"
                        .into(),
                });
                return;
            }
            let (wait_before, insert_wait, why, slack_end) =
                match scan_close(rank, step, win, covered, &p.ranks[rank], &accesses) {
                    WaitPoint::At { at, insert, why } => (Some(at), insert, why, at),
                    WaitPoint::Eop => (
                        None,
                        false,
                        "no dependent use before end of program".to_string(),
                        p.ranks[rank].len(),
                    ),
                };
            if slack_end <= step + 1 {
                report.findings.push(SlackFinding {
                    rank,
                    step,
                    win,
                    kind,
                    class: SlackClass::Required,
                    wait_before: None,
                    insert_wait: false,
                    localize: false,
                    covered_bytes,
                    why: format!("zero slack: {why}"),
                });
                return;
            }
            let code = match kind {
                SyncKind::FenceClose | SyncKind::Complete | SyncKind::WaitEpoch => Code::W002,
                SyncKind::Unlock | SyncKind::UnlockAll => Code::W003,
                SyncKind::Flush => unreachable!("flushes use classify_flush"),
            };
            report.diags.push(Diagnostic {
                code,
                rank,
                step: Some(step),
                detail: format!(
                    "blocking {kind:?} on window {win} can be its nonblocking form with the \
                     wait deferred {} statement(s): {why}",
                    slack_end - step - 1
                ),
            });
            report.findings.push(SlackFinding {
                rank,
                step,
                win,
                kind,
                class: SlackClass::Relaxable,
                wait_before,
                insert_wait,
                localize: false,
                covered_bytes,
                why,
            });
        };

        for (step, stmt) in stmts.iter().enumerate() {
            match stmt {
                Stmt::Fence { win, close } => {
                    let calls = fence_calls.entry(*win).or_insert(0);
                    let closing = *calls > 0;
                    *calls += 1;
                    let covered = fence_ops.insert(*win, Vec::new()).unwrap_or_default();
                    if closing && close.is_blocking() {
                        classify_close(rank, step, *win, SyncKind::FenceClose, &covered,
                            &mut report);
                    }
                }
                Stmt::Start { win, group } => {
                    let list = my_starts.entry(*win).or_default();
                    gats.insert(*win, (list.len(), Vec::new()));
                    list.push(StartShape {
                        group: group.clone(),
                        step,
                        ops_toward: BTreeMap::new(),
                    });
                }
                Stmt::Complete { win, close } => {
                    let (covered, start_idx) = match gats.remove(win) {
                        Some((i, ops)) => (ops, Some(i)),
                        None => (Vec::new(), None),
                    };
                    // W004: group targets this epoch never addressed.
                    if let Some(i) = start_idx {
                        let sh = &my_starts[win][i];
                        let unused: Vec<usize> = sh
                            .group
                            .iter()
                            .copied()
                            .filter(|t| !sh.ops_toward.contains_key(t))
                            .collect();
                        if !unused.is_empty() && unused.len() < sh.group.len() {
                            report.diags.push(Diagnostic {
                                code: Code::W004,
                                rank,
                                step: Some(sh.step),
                                detail: format!(
                                    "start group on window {win} names rank(s) {unused:?} but \
                                     the epoch never operates toward them (grants collected \
                                     for nothing)"
                                ),
                            });
                        }
                    }
                    if close.is_blocking() {
                        classify_close(rank, step, *win, SyncKind::Complete, &covered,
                            &mut report);
                    }
                }
                Stmt::Post { win, group } => {
                    let mut occ = BTreeMap::new();
                    for &o in group {
                        let c = posts_toward.entry((*win, o)).or_insert(0);
                        occ.insert(o, *c);
                        *c += 1;
                    }
                    my_posts
                        .entry(*win)
                        .or_default()
                        .push(PostShape { group: group.clone(), step, occ });
                }
                Stmt::WaitEpoch { win, close } => {
                    if close.is_blocking() {
                        // The exposure close publishes this rank's whole
                        // window: conservative covered set.
                        let covered = vec![Iv {
                            target: rank,
                            lo: 0,
                            hi: p.windows.get(*win).copied().unwrap_or(0),
                            write: true,
                        }];
                        classify_close(rank, step, *win, SyncKind::WaitEpoch, &covered,
                            &mut report);
                    }
                }
                Stmt::Lock { win, target, .. } => {
                    locks.insert((*win, *target), Vec::new());
                }
                Stmt::Unlock { win, target, close } => {
                    let covered = locks.remove(&(*win, *target)).unwrap_or_default();
                    if close.is_blocking() {
                        classify_close(rank, step, *win, SyncKind::Unlock, &covered,
                            &mut report);
                    }
                }
                Stmt::LockAll { win } => {
                    lock_all.insert(*win, Vec::new());
                }
                Stmt::UnlockAll { win, close } => {
                    let covered = lock_all.remove(win).unwrap_or_default();
                    if close.is_blocking() {
                        classify_close(rank, step, *win, SyncKind::UnlockAll, &covered,
                            &mut report);
                    }
                }
                Stmt::Flush { win, target, local_only, close } => {
                    if !close.is_blocking() {
                        iflushes.push(IFlush {
                            win: *win,
                            target: *target,
                            local_only: *local_only,
                        });
                        continue;
                    }
                    // Discharge accounting (mirrors the analyzer's E008
                    // rule): which earlier iflush requests does this
                    // blocking flush complete?
                    let mut full = 0usize;
                    let mut local = 0usize;
                    iflushes.retain(|f| {
                        let covered = f.win == *win
                            && (target.is_none() || f.target == *target)
                            && (!*local_only || f.local_only);
                        if covered {
                            if f.local_only {
                                local += 1;
                            } else {
                                full += 1;
                            }
                        }
                        !covered
                    });
                    // Covered epochs and their ops.
                    let mut covered_ops: Vec<Iv> = Vec::new();
                    let mut any_epoch = false;
                    let mut close_at = stmts.len();
                    match target {
                        Some(t) => {
                            if let Some(ops) = locks.get(&(*win, *t)) {
                                any_epoch = true;
                                covered_ops.extend(ops.iter().cloned());
                                close_at = close_at.min(find_close(stmts, step, |s| {
                                    matches!(s, Stmt::Unlock { win: w, target: tt, .. }
                                        if w == win && tt == t)
                                }));
                            } else if let Some(ops) = lock_all.get(win) {
                                any_epoch = true;
                                covered_ops
                                    .extend(ops.iter().filter(|iv| iv.target == *t).cloned());
                                close_at = close_at.min(find_close(stmts, step, |s| {
                                    matches!(s, Stmt::UnlockAll { win: w, .. } if w == win)
                                }));
                            }
                        }
                        None => {
                            for ((w, t), ops) in &locks {
                                if w == win {
                                    any_epoch = true;
                                    covered_ops.extend(ops.iter().cloned());
                                    close_at = close_at.min(find_close(stmts, step, |s| {
                                        matches!(s, Stmt::Unlock { win: ww, target: tt, .. }
                                            if ww == win && tt == t)
                                    }));
                                }
                            }
                            if let Some(ops) = lock_all.get(win) {
                                any_epoch = true;
                                covered_ops.extend(ops.iter().cloned());
                                close_at = close_at.min(find_close(stmts, step, |s| {
                                    matches!(s, Stmt::UnlockAll { win: w, .. } if w == win)
                                }));
                            }
                        }
                    }
                    if !any_epoch {
                        // No passive epoch open: the E-layer's business.
                        continue;
                    }
                    let (class, localize, why) = if pinned[rank] {
                        (SlackClass::Required, false, "reorder pin".to_string())
                    } else if full > 0 {
                        (
                            SlackClass::Required,
                            false,
                            format!("discharges {full} full iflush request(s)"),
                        )
                    } else if let Some(dep) = scan_flush(
                        rank, step, *win, close_at, &covered_ops, &p.ranks[rank], &accesses,
                    ) {
                        (SlackClass::Required, false, dep)
                    } else if local > 0 {
                        if *local_only {
                            (
                                SlackClass::Required,
                                false,
                                format!("discharges {local} local-only iflush request(s)"),
                            )
                        } else {
                            (
                                SlackClass::Relaxable,
                                true,
                                format!(
                                    "only local-only iflush request(s) ride on it ({local}); \
                                     remote completion is never consumed before the epoch \
                                     close at stmt {close_at}"
                                ),
                            )
                        }
                    } else {
                        (
                            SlackClass::Elidable,
                            false,
                            format!(
                                "no dependent use before the epoch close at stmt {close_at} \
                                 and no iflush request discharged"
                            ),
                        )
                    };
                    if class != SlackClass::Required {
                        report.diags.push(Diagnostic {
                            code: Code::W001,
                            rank,
                            step: Some(step),
                            detail: format!(
                                "redundant blocking flush on window {win}: {why} — {}",
                                if localize { "weaken to flush_local" } else { "elide it" }
                            ),
                        });
                    }
                    report.findings.push(SlackFinding {
                        rank,
                        step,
                        win: *win,
                        kind: SyncKind::Flush,
                        class,
                        wait_before: None,
                        insert_wait: false,
                        localize,
                        covered_bytes: covered_ops.iter().map(|iv| iv.hi - iv.lo).sum(),
                        why,
                    });
                }
                Stmt::Put { .. }
                | Stmt::Get { .. }
                | Stmt::Acc { .. }
                | Stmt::ReadValue { .. }
                | Stmt::AccVal { .. } => {
                    let (win, target, iv) = match stmt {
                        Stmt::Put { win, target, disp, len }
                        | Stmt::Acc { win, target, disp, len, .. } => (
                            *win,
                            *target,
                            Iv { target: *target, lo: *disp, hi: *disp + *len, write: true },
                        ),
                        Stmt::Get { win, target, disp, len } => (
                            *win,
                            *target,
                            Iv { target: *target, lo: *disp, hi: *disp + *len, write: false },
                        ),
                        Stmt::ReadValue { win, target, disp, kind, .. } => (
                            *win,
                            *target,
                            Iv {
                                target: *target,
                                lo: *disp,
                                hi: *disp + 8,
                                write: kind.write_op().is_some(),
                            },
                        ),
                        Stmt::AccVal { win, target, disp, .. } => (
                            *win,
                            *target,
                            Iv { target: *target, lo: *disp, hi: *disp + 8, write: true },
                        ),
                        _ => unreachable!(),
                    };
                    if let Some(ops) = locks.get_mut(&(win, target)) {
                        ops.push(iv);
                    } else if let Some(ops) = lock_all.get_mut(&win) {
                        ops.push(iv);
                    } else if let Some((i, ops)) = gats.get_mut(&win) {
                        let sh = &mut my_starts.get_mut(&win).unwrap()[*i];
                        if sh.group.contains(&target) {
                            *sh.ops_toward.entry(target).or_insert(0) += 1;
                            ops.push(iv);
                        } else if fence_calls.get(&win).copied().unwrap_or(0) > 0 {
                            fence_ops.entry(win).or_default().push(iv);
                        }
                    } else if fence_calls.get(&win).copied().unwrap_or(0) > 0 {
                        fence_ops.entry(win).or_default().push(iv);
                    }
                }
                Stmt::SpinUntil { .. } | Stmt::WaitAll | Stmt::Barrier => {}
            }
        }
        starts_shape.push(my_starts);
        posts_shape.push(my_posts);
    }

    // W005: dead exposure epochs, via the cross-rank start/post matching
    // (the deadlock pass's occurrence rule): target t's k-th post
    // containing origin o matches o's k-th start containing t.
    for (t, wins) in posts_shape.iter().enumerate() {
        for (win, posts) in wins {
            for post in posts {
                if post.group.is_empty() {
                    continue;
                }
                let mut all_dead = true;
                for &o in &post.group {
                    let occ = post.occ[&o];
                    let matched = starts_shape
                        .get(o)
                        .and_then(|m| m.get(win))
                        .map(|list| {
                            list.iter().filter(|s| s.group.contains(&t)).nth(occ)
                        })
                        .unwrap_or(None);
                    match matched {
                        // Mismatched exposure is E015's business, and an
                        // origin that does operate keeps the epoch live.
                        None => {
                            all_dead = false;
                            break;
                        }
                        Some(s) if s.ops_toward.get(&t).copied().unwrap_or(0) > 0 => {
                            all_dead = false;
                            break;
                        }
                        Some(_) => {}
                    }
                }
                if all_dead {
                    report.diags.push(Diagnostic {
                        code: Code::W005,
                        rank: t,
                        step: Some(post.step),
                        detail: format!(
                            "exposure epoch on window {win} grants origin(s) {:?} that never \
                             operate toward rank {t} in the matched access epoch(s)",
                            post.group
                        ),
                    });
                }
            }
        }
    }

    // Mechanizable W004 shrinks: for each over-wide start (some — not
    // all — group targets unused), pair every unused target with the
    // matching post on the target's side via the k-th-occurrence rule.
    // Pairs without a matching post are skipped: the shrink must stay
    // symmetric, and a missing post is E015's business.
    for (origin, wins) in starts_shape.iter().enumerate() {
        for (win, list) in wins {
            for (i, sh) in list.iter().enumerate() {
                let unused: Vec<usize> = sh
                    .group
                    .iter()
                    .copied()
                    .filter(|t| !sh.ops_toward.contains_key(t))
                    .collect();
                if unused.is_empty() || unused.len() == sh.group.len() {
                    continue;
                }
                for &t in &unused {
                    let occ = list[..i].iter().filter(|s| s.group.contains(&t)).count();
                    let post = posts_shape
                        .get(t)
                        .and_then(|m| m.get(win))
                        .and_then(|ps| {
                            ps.iter().filter(|p| p.group.contains(&origin)).nth(occ)
                        });
                    if let Some(p) = post {
                        report.shrinks.push(GroupShrink {
                            origin,
                            win: *win,
                            start_step: sh.step,
                            target: t,
                            post_step: p.step,
                        });
                    }
                }
            }
        }
    }

    report
}

/// First statement after `step` matching `pred`, or end of program.
fn find_close(stmts: &[Stmt], step: usize, pred: impl Fn(&Stmt) -> bool) -> usize {
    stmts
        .iter()
        .enumerate()
        .skip(step + 1)
        .find(|(_, s)| pred(s))
        .map(|(d, _)| d)
        .unwrap_or(stmts.len())
}
