//! Flow-sensitive static analysis of an [`IrProgram`].
//!
//! One pass walks every rank's statement list through a per-(rank, window)
//! epoch state machine that mirrors the engine's API-level checks exactly
//! (`AlreadyInEpoch`, `EpochMismatch`, `NoEpoch`, the dormant-trailing-
//! fence tolerance, and the op→epoch routing order lock → lock_all → GATS
//! → fence), collecting every data access with its covering epoch and
//! concurrency scope. Cross-rank passes then check collective matching
//! (E011) and byte-range interval conflicts: cross-origin conflicts within
//! one concurrency scope (E006/E007) and same-origin cross-epoch conflicts
//! made concurrent by reorder flags (E009).
//!
//! The analyzer recovers after every diagnostic (reports and keeps
//! walking), so one malformed statement yields one diagnostic rather than
//! a cascade.

use std::collections::BTreeMap;

use mpisim_core::trace::AccessKind;

use crate::diag::{Code, Diagnostic};
use crate::ir::{Close, IrProgram, Stmt};

/// Epoch kinds that matter for reorder-region analysis.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum EKind {
    Fence,
    Gats,
    Lock,
    LockAll,
}

/// Which concurrency scope an access belongs to (who else can race with it
/// at the target window).
#[derive(Clone, Debug, PartialEq, Eq)]
enum Scope {
    /// Fence phase `seq`: every rank's accesses of phase `seq` are
    /// concurrent.
    FencePhase(usize),
    /// GATS access: the origin's `start_seq`-th start whose group contains
    /// the target; resolved to the matching exposure instance in the
    /// cross-rank pass.
    Gats {
        /// Occurrence index of this (origin → target) start.
        start_seq: usize,
    },
    /// Exclusive lock: serialized by the lock manager, never concurrent.
    ExclusiveLock,
    /// Shared lock or `lock_all`: potentially concurrent with every other
    /// shared-mode access to the same target.
    Shared,
}

/// One recorded data access.
#[derive(Clone, Debug)]
struct Access {
    rank: usize,
    step: usize,
    target: usize,
    lo: usize,
    hi: usize,
    kind: AccessKind,
    scope: Scope,
    /// Per-rank ordinal of the covering access epoch.
    epoch: usize,
    /// Per-rank reorder-concurrency region of the covering epoch.
    region: usize,
}

fn overlap(a: &Access, b: &Access) -> Option<(usize, usize)> {
    let lo = a.lo.max(b.lo);
    let hi = a.hi.min(b.hi);
    (lo < hi).then_some((lo, hi))
}

/// Per-rank walker state.
struct RankState {
    rank: usize,
    n_ranks: usize,
    win_bytes: usize,
    reorder: bool,
    unsafe_fence_reorder: bool,

    /// Open fence epoch: `Some((ordinal, region, phase_seq, has_ops))`.
    fence: Option<(usize, usize, usize, bool)>,
    /// Fence statements executed (collective fence count).
    fence_calls: usize,
    /// Open GATS access epoch: group + ordinal/region + open step +
    /// per-target start occurrence indices.
    gats: Option<GatsState>,
    /// Open exposure epoch: (group, open step).
    exposure: Option<(Vec<usize>, usize)>,
    /// Open per-target locks: target → (exclusive, ordinal, region, step).
    locks: BTreeMap<usize, (bool, usize, usize, usize)>,
    /// Open lock_all epoch: (ordinal, region, step).
    lock_all: Option<(usize, usize, usize)>,

    /// Outstanding nonblocking-epoch requests: (step, what).
    outstanding: Vec<(usize, &'static str)>,

    /// Count of starts whose group contains each target (E011 + scope).
    starts_toward: BTreeMap<usize, usize>,
    /// This rank's posts, in order: the exposure-instance list.
    posts: Vec<Vec<usize>>,

    /// Reorder-region bookkeeping.
    next_ordinal: usize,
    region: usize,
    prev_kind: Option<EKind>,
    /// A blocking close / wait happened since the last epoch open: the
    /// next epoch cannot overlap anything before it.
    synced: bool,

    accesses: Vec<Access>,
    diags: Vec<Diagnostic>,
}

impl RankState {
    fn new(rank: usize, p: &IrProgram) -> Self {
        RankState {
            rank,
            n_ranks: p.n_ranks,
            win_bytes: p.win_bytes,
            reorder: p.reorder,
            unsafe_fence_reorder: p.unsafe_fence_reorder,
            fence: None,
            fence_calls: 0,
            gats: None,
            exposure: None,
            locks: BTreeMap::new(),
            lock_all: None,
            outstanding: Vec::new(),
            starts_toward: BTreeMap::new(),
            posts: Vec::new(),
            next_ordinal: 0,
            region: 0,
            prev_kind: None,
            synced: false,
            accesses: Vec::new(),
            diags: Vec::new(),
        }
    }

    fn diag(&mut self, code: Code, step: Option<usize>, detail: String) {
        self.diags.push(Diagnostic { code, rank: self.rank, step, detail });
    }

    /// Allocate the next access epoch's (ordinal, region), advancing the
    /// reorder-concurrency region when the adjacent pair cannot progress
    /// concurrently: reorder flags off, a blocking synchronization between
    /// the opens, either side a `lock_all` epoch, or either side a fence
    /// epoch without the `unsafe_fence_reorder` extension.
    fn open_epoch(&mut self, kind: EKind) -> (usize, usize) {
        let fence_blocks = |k: EKind| matches!(k, EKind::Fence) && !self.unsafe_fence_reorder;
        let break_region = !self.reorder
            || self.synced
            || kind == EKind::LockAll
            || self.prev_kind == Some(EKind::LockAll)
            || fence_blocks(kind)
            || self.prev_kind.map(fence_blocks).unwrap_or(false);
        if break_region {
            self.region += 1;
        }
        self.prev_kind = Some(kind);
        self.synced = false;
        let ordinal = self.next_ordinal;
        self.next_ordinal += 1;
        (ordinal, self.region)
    }

    /// The engine's `check_fence_conflict`: a *non-dormant* open fence
    /// epoch blocks every other epoch-opening routine; a dormant trailing
    /// fence is tolerated.
    fn fence_conflict(&mut self, step: usize, called: &str) {
        if let Some((_, _, seq, has_ops)) = self.fence {
            if has_ops {
                self.diag(
                    Code::E005,
                    Some(step),
                    format!("{called} while fence phase {seq} is open and has issued operations"),
                );
            }
        }
    }

    fn push_request(&mut self, step: usize, what: &'static str) {
        self.outstanding.push((step, what));
    }

    fn data_op(
        &mut self,
        step: usize,
        target: usize,
        disp: usize,
        len: usize,
        kind: AccessKind,
        name: &str,
    ) {
        if target >= self.n_ranks {
            self.diag(
                Code::E002,
                Some(step),
                format!("{name} targets rank {target} but the job has {} ranks", self.n_ranks),
            );
            return;
        }
        if disp + len > self.win_bytes {
            self.diag(
                Code::E010,
                Some(step),
                format!(
                    "{name} touches bytes [{disp}, {}) of rank {target}'s {}-byte window",
                    disp + len,
                    self.win_bytes
                ),
            );
            return;
        }
        // Route to the covering access epoch exactly like the engine:
        // single-target lock → lock_all → GATS access (target in group) →
        // fence.
        let (scope, epoch, region) = if let Some(&(excl, ord, reg, _)) = self.locks.get(&target) {
            (if excl { Scope::ExclusiveLock } else { Scope::Shared }, ord, reg)
        } else if let Some((ord, reg, _)) = self.lock_all {
            (Scope::Shared, ord, reg)
        } else if let Some(g) = self.gats.as_ref().filter(|g| g.group.contains(&target)) {
            (Scope::Gats { start_seq: g.start_seq[&target] }, g.ordinal, g.region)
        } else if self.gats.is_some() && self.fence.is_none() {
            self.diag(
                Code::E002,
                Some(step),
                format!("{name} targets rank {target}, which is not in the start group"),
            );
            return;
        } else if let Some((ord, reg, seq, has_ops)) = self.fence.as_mut() {
            if self.gats.is_some() {
                // The engine would silently route this op into the open
                // fence phase; it still escapes the start group.
                let d = format!(
                    "{name} targets rank {target}, which is not in the start group \
                     (the operation would fall through to fence phase {seq})"
                );
                *has_ops = true;
                let rec = (Scope::FencePhase(*seq), *ord, *reg);
                self.diag(Code::E002, Some(step), d);
                rec
            } else {
                *has_ops = true;
                (Scope::FencePhase(*seq), *ord, *reg)
            }
        } else {
            self.diag(
                Code::E001,
                Some(step),
                format!("{name} toward rank {target} with no access epoch open"),
            );
            return;
        };
        self.accesses.push(Access {
            rank: self.rank,
            step,
            target,
            lo: disp,
            hi: disp + len,
            kind,
            scope,
            epoch,
            region,
        });
    }

    fn finish(&mut self) {
        if let Some(g) = self.gats.take() {
            self.diag(
                Code::E003,
                Some(g.step),
                "GATS access epoch is never completed".into(),
            );
        }
        if let Some((_, step)) = self.exposure.take() {
            self.diag(Code::E003, Some(step), "exposure epoch is never waited".into());
        }
        let locks = std::mem::take(&mut self.locks);
        for (target, (_, _, _, step)) in locks {
            self.diag(
                Code::E003,
                Some(step),
                format!("lock on rank {target} is never unlocked"),
            );
        }
        if let Some((_, _, step)) = self.lock_all.take() {
            self.diag(Code::E003, Some(step), "lock_all epoch is never unlocked".into());
        }
        if let Some((_, _, seq, true)) = self.fence {
            self.diag(
                Code::E003,
                None,
                format!("trailing fence phase {seq} issued operations but is never closed"),
            );
        }
        let outstanding = std::mem::take(&mut self.outstanding);
        for (step, what) in outstanding {
            self.diag(
                Code::E008,
                Some(step),
                format!("request returned by {what} is never tested or waited"),
            );
        }
    }
}

/// Open-GATS bookkeeping.
struct GatsState {
    group: Vec<usize>,
    step: usize,
    ordinal: usize,
    region: usize,
    /// Per-target occurrence index of this start (0-based).
    start_seq: BTreeMap<usize, usize>,
}

fn walk_rank(rank: usize, p: &IrProgram) -> RankState {
    let mut st = RankState::new(rank, p);
    for (step, stmt) in p.ranks[rank].iter().enumerate() {
        match stmt {
            Stmt::Fence(close) => {
                // The engine rejects fence with any other epoch kind open.
                if st.gats.is_some()
                    || st.exposure.is_some()
                    || !st.locks.is_empty()
                    || st.lock_all.is_some()
                {
                    st.diag(
                        Code::E005,
                        Some(step),
                        "fence while a GATS/lock/exposure epoch is open".into(),
                    );
                }
                if st.fence.is_some() && close.is_blocking() {
                    st.synced = true;
                }
                if matches!(close, Close::Nonblocking) {
                    // `ifence` always returns a request: the closing
                    // request, or a dummy opening request (§VII.C).
                    st.push_request(step, "ifence");
                }
                let seq = st.fence_calls;
                st.fence_calls += 1;
                let (ord, reg) = st.open_epoch(EKind::Fence);
                st.fence = Some((ord, reg, seq, false));
            }
            Stmt::Start(group) => {
                st.fence_conflict(step, "start");
                if st.gats.is_some() {
                    st.diag(Code::E005, Some(step), "start while a start epoch is open".into());
                }
                if !st.locks.is_empty() || st.lock_all.is_some() {
                    st.diag(Code::E005, Some(step), "start while a lock epoch is open".into());
                }
                let (ordinal, region) = st.open_epoch(EKind::Gats);
                let mut start_seq = BTreeMap::new();
                for &t in group {
                    let c = st.starts_toward.entry(t).or_insert(0);
                    start_seq.insert(t, *c);
                    *c += 1;
                }
                st.gats = Some(GatsState { group: group.clone(), step, ordinal, region, start_seq });
            }
            Stmt::Complete(close) => {
                if st.gats.take().is_none() {
                    st.diag(Code::E004, Some(step), "complete without an open start epoch".into());
                }
                if close.is_blocking() {
                    st.synced = true;
                } else {
                    st.push_request(step, "icomplete");
                }
            }
            Stmt::Post(group) => {
                st.fence_conflict(step, "post");
                if st.exposure.is_some() {
                    st.diag(Code::E005, Some(step), "post while an exposure epoch is open".into());
                }
                st.exposure = Some((group.clone(), step));
                st.posts.push(group.clone());
            }
            Stmt::WaitEpoch(close) => {
                if st.exposure.take().is_none() {
                    st.diag(Code::E004, Some(step), "wait without an open exposure epoch".into());
                }
                if close.is_blocking() {
                    st.synced = true;
                } else {
                    st.push_request(step, "iwait");
                }
            }
            Stmt::Lock { target, exclusive, nonblocking } => {
                if *target >= p.n_ranks {
                    st.diag(
                        Code::E002,
                        Some(step),
                        format!("lock targets rank {target} but the job has {} ranks", p.n_ranks),
                    );
                    continue;
                }
                st.fence_conflict(step, "lock");
                if st.locks.contains_key(target) {
                    st.diag(
                        Code::E005,
                        Some(step),
                        format!("lock on rank {target}, which is already locked"),
                    );
                }
                if st.lock_all.is_some() || st.gats.is_some() {
                    st.diag(
                        Code::E005,
                        Some(step),
                        "lock while a lock_all/start epoch is open".into(),
                    );
                }
                if *nonblocking {
                    st.push_request(step, "ilock");
                }
                let (ord, reg) = st.open_epoch(EKind::Lock);
                st.locks.insert(*target, (*exclusive, ord, reg, step));
            }
            Stmt::Unlock { target, close } => {
                if st.locks.remove(target).is_none() {
                    st.diag(
                        Code::E004,
                        Some(step),
                        format!("unlock of rank {target}, which is not locked"),
                    );
                }
                if close.is_blocking() {
                    st.synced = true;
                } else {
                    st.push_request(step, "iunlock");
                }
            }
            Stmt::LockAll => {
                st.fence_conflict(step, "lock_all");
                if !st.locks.is_empty() || st.lock_all.is_some() || st.gats.is_some() {
                    st.diag(
                        Code::E005,
                        Some(step),
                        "lock_all while a lock/start epoch is open".into(),
                    );
                }
                let (ord, reg) = st.open_epoch(EKind::LockAll);
                st.lock_all = Some((ord, reg, step));
            }
            Stmt::UnlockAll(close) => {
                if st.lock_all.take().is_none() {
                    st.diag(
                        Code::E004,
                        Some(step),
                        "unlock_all without an open lock_all epoch".into(),
                    );
                }
                if close.is_blocking() {
                    st.synced = true;
                } else {
                    st.push_request(step, "iunlock_all");
                }
            }
            Stmt::Put { target, disp, len } => {
                st.data_op(step, *target, *disp, *len, AccessKind::Write, "put");
            }
            Stmt::Get { target, disp, len } => {
                st.data_op(step, *target, *disp, *len, AccessKind::Read, "get");
            }
            Stmt::Acc { target, disp, len, op } => {
                st.data_op(step, *target, *disp, *len, AccessKind::Atomic(*op), "accumulate");
            }
            Stmt::WaitAll => {
                st.outstanding.clear();
                st.synced = true;
            }
            Stmt::Barrier => {}
        }
    }
    st.finish();
    st
}

/// E012 scan: every synchronization statement of a *surviving* rank whose
/// completion requires a crashed peer's cooperation. Crashed ranks' own
/// programs are skipped — they stop executing at the crash point, so their
/// dangling dependencies are the fault model's doing, not the program's.
fn crashed_dependencies(p: &IrProgram) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if p.crashed.is_empty() {
        return diags;
    }
    let dead = |r: &usize| p.crashed.contains(r);
    for (rank, stmts) in p.ranks.iter().enumerate() {
        if dead(&rank) {
            continue;
        }
        let mut diag = |step: usize, detail: String| {
            diags.push(Diagnostic { code: Code::E012, rank, step: Some(step), detail });
        };
        for (step, stmt) in stmts.iter().enumerate() {
            match stmt {
                Stmt::Start(group) => {
                    for &t in group.iter().filter(|t| dead(t)) {
                        diag(
                            step,
                            format!(
                                "start toward rank {t}, which the fault model crashes: its \
                                 exposure epoch may never open and complete cannot terminate"
                            ),
                        );
                    }
                }
                Stmt::Post(group) => {
                    for &o in group.iter().filter(|o| dead(o)) {
                        diag(
                            step,
                            format!(
                                "post toward rank {o}, which the fault model crashes: its \
                                 completion notification may never arrive and wait cannot \
                                 terminate"
                            ),
                        );
                    }
                }
                Stmt::Lock { target, .. } if dead(target) => {
                    diag(
                        step,
                        format!(
                            "lock on rank {target}, which the fault model crashes: the \
                             grant may never arrive"
                        ),
                    );
                }
                Stmt::LockAll => {
                    diag(
                        step,
                        format!(
                            "lock_all needs a grant from every rank, but the fault model \
                             crashes {:?}",
                            p.crashed
                        ),
                    );
                }
                Stmt::Fence(_) | Stmt::Barrier => {
                    let name = if matches!(stmt, Stmt::Fence(_)) { "fence" } else { "barrier" };
                    diag(
                        step,
                        format!(
                            "{name} with crashed participant(s) {:?}: the collective \
                             cannot complete",
                            p.crashed
                        ),
                    );
                }
                _ => {}
            }
        }
    }
    diags
}

/// Classify a conflicting pair: both mutate → E006, otherwise (one side is
/// a read) → E007.
fn conflict_code(a: AccessKind, b: AccessKind) -> Code {
    if a.writes() && b.writes() {
        Code::E006
    } else {
        Code::E007
    }
}

fn describe(a: &Access) -> String {
    format!(
        "rank {} stmt {} ({:?} bytes [{}, {}) of rank {})",
        a.rank, a.step, a.kind, a.lo, a.hi, a.target
    )
}

/// Run the full static analysis. An empty result means the program is
/// protocol-clean: every run of it should match its oracle and pass the
/// trace audit.
pub fn analyze(p: &IrProgram) -> Vec<Diagnostic> {
    assert_eq!(p.ranks.len(), p.n_ranks, "one statement list per rank");
    let states: Vec<RankState> = (0..p.n_ranks).map(|r| walk_rank(r, p)).collect();
    let mut diags: Vec<Diagnostic> = states.iter().flat_map(|s| s.diags.clone()).collect();

    // E012: a surviving rank's epoch structure blocks on a peer the fault
    // model crashes. The crash may land before the dependency is
    // satisfied, so without the stall watchdog the program can hang.
    diags.extend(crashed_dependencies(p));

    // E011a: collective fence counts must agree on every rank.
    for s in &states[1..] {
        if s.fence_calls != states[0].fence_calls {
            diags.push(Diagnostic {
                code: Code::E011,
                rank: s.rank,
                step: None,
                detail: format!(
                    "rank {} makes {} fence calls but rank 0 makes {}",
                    s.rank, s.fence_calls, states[0].fence_calls
                ),
            });
        }
    }

    // E011b: every (origin, target) start count must equal the count of
    // posts at the target whose group contains the origin.
    for o in &states {
        for (&t, &n_starts) in &o.starts_toward {
            if t >= p.n_ranks {
                continue; // reported as E002 at the start site's ops
            }
            let n_posts =
                states[t].posts.iter().filter(|g| g.contains(&o.rank)).count();
            if n_starts != n_posts {
                diags.push(Diagnostic {
                    code: Code::E011,
                    rank: o.rank,
                    step: None,
                    detail: format!(
                        "rank {} starts toward rank {t} {n_starts} time(s) but rank {t} \
                         posts toward rank {} {n_posts} time(s)",
                        o.rank, o.rank
                    ),
                });
            }
        }
    }

    // Resolve each GATS access to its exposure instance at the target: the
    // origin's `start_seq`-th start containing t matches t's
    // `start_seq`-th post containing the origin.
    let mut accesses: Vec<(Access, Option<usize>)> = Vec::new();
    for s in &states {
        for a in &s.accesses {
            let exposure = match &a.scope {
                Scope::Gats { start_seq } => {
                    let post = states[a.target]
                        .posts
                        .iter()
                        .enumerate()
                        .filter(|(_, g)| g.contains(&a.rank))
                        .nth(*start_seq)
                        .map(|(i, _)| i);
                    if post.is_none() {
                        continue; // unmatched start: E011 already reported
                    }
                    post
                }
                _ => None,
            };
            accesses.push((a.clone(), exposure));
        }
    }

    // E006/E007: cross-origin conflicts within one concurrency scope.
    // Same-origin same-target operations are per-channel FIFO ordered by
    // the runtime, so only different origins can race here.
    for (i, (a, ea)) in accesses.iter().enumerate() {
        for (b, eb) in &accesses[i + 1..] {
            if a.rank == b.rank || a.target != b.target {
                continue;
            }
            let concurrent = match (&a.scope, &b.scope) {
                (Scope::FencePhase(x), Scope::FencePhase(y)) => x == y,
                (Scope::Gats { .. }, Scope::Gats { .. }) => ea == eb,
                (Scope::Shared, Scope::Shared) => true,
                _ => false,
            };
            if !concurrent {
                continue;
            }
            if let Some((lo, hi)) = overlap(a, b) {
                if a.kind.conflicts_with(b.kind) {
                    diags.push(Diagnostic {
                        code: conflict_code(a.kind, b.kind),
                        rank: a.rank,
                        step: Some(a.step),
                        detail: format!(
                            "bytes [{lo}, {hi}) of rank {}'s window: {} is unordered \
                             against {}",
                            a.target,
                            describe(a),
                            describe(b)
                        ),
                    });
                }
            }
        }
    }

    // E009: same-origin accesses in different epochs of one reorder-
    // concurrency region — the flags let the runtime progress those epochs
    // out of order, so conflicting overlaps are schedule-dependent.
    if p.reorder {
        for s in &states {
            for (i, a) in s.accesses.iter().enumerate() {
                for b in &s.accesses[i + 1..] {
                    if a.target != b.target || a.epoch == b.epoch || a.region != b.region {
                        continue;
                    }
                    if let Some((lo, hi)) = overlap(a, b) {
                        if a.kind.conflicts_with(b.kind) {
                            diags.push(Diagnostic {
                                code: Code::E009,
                                rank: s.rank,
                                step: Some(a.step),
                                detail: format!(
                                    "reorder flags allow epochs {} and {} to progress \
                                     concurrently, but bytes [{lo}, {hi}) of rank {}'s \
                                     window conflict: {} vs {}",
                                    a.epoch,
                                    b.epoch,
                                    a.target,
                                    describe(a),
                                    describe(b)
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    diags
}
