//! Flow-sensitive static analysis of an [`IrProgram`].
//!
//! One pass walks every rank's statement list through a per-(rank, window)
//! epoch state machine that mirrors the engine's API-level checks exactly
//! (`AlreadyInEpoch`, `EpochMismatch`, `NoEpoch`, the dormant-trailing-
//! fence tolerance, and the op→epoch routing order lock → lock_all → GATS
//! → fence), collecting every data access with its covering epoch and
//! concurrency scope. Cross-rank passes then check collective matching
//! (E011) and byte-range interval conflicts: cross-origin conflicts within
//! one concurrency scope (E006/E007) and same-origin cross-epoch conflicts
//! made concurrent by reorder flags (E009). The whole-job deadlock and
//! progress passes (E013–E017) live in [`crate::deadlock`] and run from
//! [`analyze`] after the per-rank walk.
//!
//! The analyzer recovers after every diagnostic (reports and keeps
//! walking), so one malformed statement yields one diagnostic rather than
//! a cascade.

use std::collections::BTreeMap;

use mpisim_core::trace::AccessKind;
use mpisim_core::ReduceOp;

use crate::diag::{Code, Diagnostic};
use crate::ir::{Close, FetchKind, IrProgram, Stmt};

/// How a value-producing read touches the target slot, for the conflict
/// matrix: a plain `Get` is a non-atomic read, a `NoOp` atomic is an
/// element-wise-atomic read, and a writing fetch carries its operator.
fn fetch_access(kind: FetchKind) -> AccessKind {
    match kind.write_op() {
        Some(op) => AccessKind::Atomic(op),
        None if kind.is_atomic() => AccessKind::Atomic(ReduceOp::NoOp),
        None => AccessKind::Read,
    }
}

/// Epoch kinds that matter for reorder-region analysis.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum EKind {
    Fence,
    Gats,
    Lock,
    LockAll,
}

/// Which concurrency scope an access belongs to (who else can race with it
/// at the target window).
#[derive(Clone, Debug, PartialEq, Eq)]
enum Scope {
    /// Fence phase `seq`: every rank's accesses of phase `seq` on the
    /// same window are concurrent.
    FencePhase(usize),
    /// GATS access: the origin's `start_seq`-th start whose group contains
    /// the target; resolved to the matching exposure instance in the
    /// cross-rank pass.
    Gats {
        /// Occurrence index of this (origin → target) start.
        start_seq: usize,
    },
    /// Exclusive lock: serialized by the lock manager, never concurrent.
    ExclusiveLock,
    /// Shared lock or `lock_all`: potentially concurrent with every other
    /// shared-mode access to the same target.
    Shared,
}

/// One recorded data access.
#[derive(Clone, Debug)]
struct Access {
    rank: usize,
    step: usize,
    win: usize,
    target: usize,
    lo: usize,
    hi: usize,
    kind: AccessKind,
    scope: Scope,
    /// Per-rank ordinal of the covering access epoch.
    epoch: usize,
    /// Per-(rank, window) reorder-concurrency region of the covering
    /// epoch.
    region: usize,
}

fn overlap(a: &Access, b: &Access) -> Option<(usize, usize)> {
    let lo = a.lo.max(b.lo);
    let hi = a.hi.min(b.hi);
    (lo < hi).then_some((lo, hi))
}

/// An outstanding nonblocking-epoch request, with the detail needed for
/// the flush-discharge rule.
struct OutReq {
    step: usize,
    what: &'static str,
    /// `Some` iff this is an `iflush` family request (dischargeable by a
    /// later covering blocking flush).
    flush: Option<(usize, Option<usize>, bool)>,
}

/// Per-window epoch-machine state of one rank.
#[derive(Default)]
struct WinState {
    /// Open fence epoch: `Some((ordinal, region, phase_seq, has_ops))`.
    fence: Option<(usize, usize, usize, bool)>,
    /// Fence statements executed on this window (collective fence count).
    fence_calls: usize,
    /// Open GATS access epoch.
    gats: Option<GatsState>,
    /// Open exposure epoch: (group, open step).
    exposure: Option<(Vec<usize>, usize)>,
    /// Open per-target locks: target → (exclusive, ordinal, region, step).
    locks: BTreeMap<usize, (bool, usize, usize, usize)>,
    /// Open lock_all epoch: (ordinal, region, step).
    lock_all: Option<(usize, usize, usize)>,
    /// Count of starts whose group contains each target (E011 + scope).
    starts_toward: BTreeMap<usize, usize>,
    /// This rank's posts on this window, in order: the exposure-instance
    /// list.
    posts: Vec<Vec<usize>>,
    /// Reorder-region bookkeeping (regions are per window: epochs on
    /// different windows touch disjoint memory).
    region: usize,
    prev_kind: Option<EKind>,
    /// A blocking close / wait happened since the last epoch open on this
    /// window: the next epoch cannot overlap anything before it.
    synced: bool,
}

/// Per-rank walker state.
struct RankState {
    rank: usize,
    n_ranks: usize,
    windows: Vec<usize>,
    reorder: bool,
    unsafe_fence_reorder: bool,

    /// Per-window epoch machines, created on first touch.
    wins: BTreeMap<usize, WinState>,

    /// Outstanding nonblocking-epoch requests.
    outstanding: Vec<OutReq>,

    /// Live IR-local bindings: local → the (win, target, disp, kind) of
    /// its dominating [`Stmt::ReadValue`] (later bindings shadow).
    locals: BTreeMap<usize, (usize, usize, usize, FetchKind)>,

    /// Per-rank epoch ordinal counter (shared across windows: an ordinal
    /// names one epoch of this rank).
    next_ordinal: usize,

    accesses: Vec<Access>,
    diags: Vec<Diagnostic>,
}

impl RankState {
    fn new(rank: usize, p: &IrProgram) -> Self {
        RankState {
            rank,
            n_ranks: p.n_ranks,
            windows: p.windows.clone(),
            reorder: p.reorder,
            unsafe_fence_reorder: p.unsafe_fence_reorder,
            wins: BTreeMap::new(),
            outstanding: Vec::new(),
            locals: BTreeMap::new(),
            next_ordinal: 0,
            accesses: Vec::new(),
            diags: Vec::new(),
        }
    }

    fn diag(&mut self, code: Code, step: Option<usize>, detail: String) {
        self.diags.push(Diagnostic { code, rank: self.rank, step, detail });
    }

    /// Validate a statement's window index; reports and returns `false`
    /// when out of range.
    fn check_win(&mut self, win: usize, step: usize) -> bool {
        if win >= self.windows.len() {
            self.diag(
                Code::E010,
                Some(step),
                format!(
                    "statement addresses window {win} but the program declares {} window(s)",
                    self.windows.len()
                ),
            );
            return false;
        }
        true
    }

    fn ws(&mut self, win: usize) -> &mut WinState {
        self.wins.entry(win).or_default()
    }

    /// A blocking synchronization serializes the rank in real time: no
    /// later epoch (on any window) can progress concurrently with anything
    /// before it.
    fn sync_all(&mut self) {
        for ws in self.wins.values_mut() {
            ws.synced = true;
        }
    }

    /// Allocate the next access epoch's (ordinal, region) on `win`,
    /// advancing the window's reorder-concurrency region when the adjacent
    /// pair cannot progress concurrently: reorder flags off, a blocking
    /// synchronization between the opens, either side a `lock_all` epoch,
    /// or either side a fence epoch without the `unsafe_fence_reorder`
    /// extension.
    fn open_epoch(&mut self, win: usize, kind: EKind) -> (usize, usize) {
        let unsafe_fence = self.unsafe_fence_reorder;
        let reorder = self.reorder;
        let ordinal = self.next_ordinal;
        self.next_ordinal += 1;
        let ws = self.ws(win);
        let fence_blocks = |k: EKind| matches!(k, EKind::Fence) && !unsafe_fence;
        let break_region = !reorder
            || ws.synced
            || kind == EKind::LockAll
            || ws.prev_kind == Some(EKind::LockAll)
            || fence_blocks(kind)
            || ws.prev_kind.map(fence_blocks).unwrap_or(false);
        if break_region {
            ws.region += 1;
        }
        ws.prev_kind = Some(kind);
        ws.synced = false;
        (ordinal, ws.region)
    }

    /// The engine's `check_fence_conflict`: a *non-dormant* open fence
    /// epoch on the same window blocks every other epoch-opening routine;
    /// a dormant trailing fence is tolerated.
    fn fence_conflict(&mut self, win: usize, step: usize, called: &str) {
        if let Some((_, _, seq, has_ops)) = self.ws(win).fence {
            if has_ops {
                self.diag(
                    Code::E005,
                    Some(step),
                    format!(
                        "{called} while fence phase {seq} of window {win} is open and has \
                         issued operations"
                    ),
                );
            }
        }
    }

    fn push_request(&mut self, step: usize, what: &'static str) {
        self.outstanding.push(OutReq { step, what, flush: None });
    }

    #[allow(clippy::too_many_arguments)]
    fn data_op(
        &mut self,
        step: usize,
        win: usize,
        target: usize,
        disp: usize,
        len: usize,
        kind: AccessKind,
        name: &str,
    ) {
        if !self.check_win(win, step) {
            return;
        }
        if target >= self.n_ranks {
            self.diag(
                Code::E002,
                Some(step),
                format!("{name} targets rank {target} but the job has {} ranks", self.n_ranks),
            );
            return;
        }
        let win_bytes = self.windows[win];
        if disp + len > win_bytes {
            self.diag(
                Code::E010,
                Some(step),
                format!(
                    "{name} touches bytes [{disp}, {}) of rank {target}'s {win_bytes}-byte \
                     window {win}",
                    disp + len,
                ),
            );
            return;
        }
        let rank = self.rank;
        let ws = self.ws(win);
        // Route to the covering access epoch exactly like the engine:
        // single-target lock → lock_all → GATS access (target in group) →
        // fence.
        let (scope, epoch, region) = if let Some(&(excl, ord, reg, _)) = ws.locks.get(&target) {
            (if excl { Scope::ExclusiveLock } else { Scope::Shared }, ord, reg)
        } else if let Some((ord, reg, _)) = ws.lock_all {
            (Scope::Shared, ord, reg)
        } else if let Some(g) = ws.gats.as_ref().filter(|g| g.group.contains(&target)) {
            (Scope::Gats { start_seq: g.start_seq[&target] }, g.ordinal, g.region)
        } else if ws.gats.is_some() && ws.fence.is_none() {
            self.diag(
                Code::E002,
                Some(step),
                format!("{name} targets rank {target}, which is not in the start group"),
            );
            return;
        } else if let Some((ord, reg, seq, has_ops)) = ws.fence.as_mut() {
            if ws.gats.is_some() {
                // The engine would silently route this op into the open
                // fence phase; it still escapes the start group.
                let d = format!(
                    "{name} targets rank {target}, which is not in the start group \
                     (the operation would fall through to fence phase {seq})"
                );
                *has_ops = true;
                let rec = (Scope::FencePhase(*seq), *ord, *reg);
                self.diag(Code::E002, Some(step), d);
                rec
            } else {
                *has_ops = true;
                (Scope::FencePhase(*seq), *ord, *reg)
            }
        } else {
            self.diag(
                Code::E001,
                Some(step),
                format!("{name} toward rank {target} with no access epoch open"),
            );
            return;
        };
        self.accesses.push(Access {
            rank,
            step,
            win,
            target,
            lo: disp,
            hi: disp + len,
            kind,
            scope,
            epoch,
            region,
        });
    }

    /// A blocking flush on `win` covering (`target`, `local_only`)
    /// completes — and thereby discharges — every earlier `iflush`-family
    /// request whose scope it covers: the engine's age stamps are
    /// monotone, so waiting for the later stamp completes every operation
    /// the earlier stamp covered. A full flush discharges local-only
    /// flushes of the same coverage (remote completion implies local); a
    /// `flush_local` only discharges local-only requests.
    fn discharge_flushes(&mut self, win: usize, target: Option<usize>, local_only: bool) {
        self.outstanding.retain(|r| match r.flush {
            Some((fw, ft, fl)) => {
                let covered = fw == win
                    && (target.is_none() || ft == target)
                    && (!local_only || fl);
                !covered
            }
            None => true,
        });
    }

    fn finish(&mut self) {
        // Gather end-of-program violations without consuming the
        // per-window state (the cross-rank passes still need it).
        let mut found: Vec<(Option<usize>, String)> = Vec::new();
        for (win, ws) in &self.wins {
            if let Some(g) = &ws.gats {
                found.push((
                    Some(g.step),
                    format!("GATS access epoch on window {win} is never completed"),
                ));
            }
            if let Some((_, step)) = &ws.exposure {
                found.push((
                    Some(*step),
                    format!("exposure epoch on window {win} is never waited"),
                ));
            }
            for (target, (_, _, _, step)) in &ws.locks {
                found.push((
                    Some(*step),
                    format!("lock on rank {target} (window {win}) is never unlocked"),
                ));
            }
            if let Some((_, _, step)) = ws.lock_all {
                found.push((
                    Some(step),
                    format!("lock_all epoch on window {win} is never unlocked"),
                ));
            }
            if let Some((_, _, seq, true)) = ws.fence {
                found.push((
                    None,
                    format!(
                        "trailing fence phase {seq} of window {win} issued operations but \
                         is never closed"
                    ),
                ));
            }
        }
        for (step, detail) in found {
            self.diag(Code::E003, step, detail);
        }
        let outstanding = std::mem::take(&mut self.outstanding);
        for r in outstanding {
            self.diag(
                Code::E008,
                Some(r.step),
                format!("request returned by {} is never tested or waited", r.what),
            );
        }
    }
}

/// Open-GATS bookkeeping.
struct GatsState {
    group: Vec<usize>,
    step: usize,
    ordinal: usize,
    region: usize,
    /// Per-target occurrence index of this start (0-based).
    start_seq: BTreeMap<usize, usize>,
}

fn walk_rank(rank: usize, p: &IrProgram) -> RankState {
    let mut st = RankState::new(rank, p);
    for (step, stmt) in p.ranks[rank].iter().enumerate() {
        if let Some(win) = stmt.win() {
            if !st.check_win(win, step) {
                continue;
            }
        }
        match stmt {
            Stmt::Fence { win, close } => {
                let win = *win;
                // The engine rejects fence with any other epoch kind open
                // on the same window.
                let ws = st.ws(win);
                if ws.gats.is_some()
                    || ws.exposure.is_some()
                    || !ws.locks.is_empty()
                    || ws.lock_all.is_some()
                {
                    st.diag(
                        Code::E005,
                        Some(step),
                        format!("fence while a GATS/lock/exposure epoch is open on window {win}"),
                    );
                }
                if st.ws(win).fence.is_some() && close.is_blocking() {
                    st.sync_all();
                }
                if matches!(close, Close::Nonblocking) {
                    // `ifence` always returns a request: the closing
                    // request, or a dummy opening request (§VII.C).
                    st.push_request(step, "ifence");
                }
                let seq = st.ws(win).fence_calls;
                st.ws(win).fence_calls += 1;
                let (ord, reg) = st.open_epoch(win, EKind::Fence);
                st.ws(win).fence = Some((ord, reg, seq, false));
            }
            Stmt::Start { win, group } => {
                let win = *win;
                st.fence_conflict(win, step, "start");
                let ws = st.ws(win);
                if ws.gats.is_some() {
                    st.diag(Code::E005, Some(step), "start while a start epoch is open".into());
                }
                let ws = st.ws(win);
                if !ws.locks.is_empty() || ws.lock_all.is_some() {
                    st.diag(Code::E005, Some(step), "start while a lock epoch is open".into());
                }
                let (ordinal, region) = st.open_epoch(win, EKind::Gats);
                let ws = st.ws(win);
                let mut start_seq = BTreeMap::new();
                for &t in group {
                    let c = ws.starts_toward.entry(t).or_insert(0);
                    start_seq.insert(t, *c);
                    *c += 1;
                }
                ws.gats = Some(GatsState { group: group.clone(), step, ordinal, region, start_seq });
            }
            Stmt::Complete { win, close } => {
                if st.ws(*win).gats.take().is_none() {
                    st.diag(Code::E004, Some(step), "complete without an open start epoch".into());
                }
                if close.is_blocking() {
                    st.sync_all();
                } else {
                    st.push_request(step, "icomplete");
                }
            }
            Stmt::Post { win, group } => {
                let win = *win;
                st.fence_conflict(win, step, "post");
                let ws = st.ws(win);
                if ws.exposure.is_some() {
                    st.diag(Code::E005, Some(step), "post while an exposure epoch is open".into());
                }
                let ws = st.ws(win);
                ws.exposure = Some((group.clone(), step));
                ws.posts.push(group.clone());
            }
            Stmt::WaitEpoch { win, close } => {
                if st.ws(*win).exposure.take().is_none() {
                    st.diag(Code::E004, Some(step), "wait without an open exposure epoch".into());
                }
                if close.is_blocking() {
                    st.sync_all();
                } else {
                    st.push_request(step, "iwait");
                }
            }
            Stmt::Lock { win, target, exclusive, nonblocking } => {
                let win = *win;
                if *target >= p.n_ranks {
                    st.diag(
                        Code::E002,
                        Some(step),
                        format!("lock targets rank {target} but the job has {} ranks", p.n_ranks),
                    );
                    continue;
                }
                st.fence_conflict(win, step, "lock");
                let ws = st.ws(win);
                if ws.locks.contains_key(target) {
                    st.diag(
                        Code::E005,
                        Some(step),
                        format!("lock on rank {target}, which is already locked"),
                    );
                }
                let ws = st.ws(win);
                if ws.lock_all.is_some() || ws.gats.is_some() {
                    st.diag(
                        Code::E005,
                        Some(step),
                        "lock while a lock_all/start epoch is open".into(),
                    );
                }
                if *nonblocking {
                    st.push_request(step, "ilock");
                }
                let (ord, reg) = st.open_epoch(win, EKind::Lock);
                st.ws(win).locks.insert(*target, (*exclusive, ord, reg, step));
            }
            Stmt::Unlock { win, target, close } => {
                if st.ws(*win).locks.remove(target).is_none() {
                    st.diag(
                        Code::E004,
                        Some(step),
                        format!("unlock of rank {target}, which is not locked"),
                    );
                }
                if close.is_blocking() {
                    st.sync_all();
                } else {
                    st.push_request(step, "iunlock");
                }
            }
            Stmt::LockAll { win } => {
                let win = *win;
                st.fence_conflict(win, step, "lock_all");
                let ws = st.ws(win);
                if !ws.locks.is_empty() || ws.lock_all.is_some() || ws.gats.is_some() {
                    st.diag(
                        Code::E005,
                        Some(step),
                        "lock_all while a lock/start epoch is open".into(),
                    );
                }
                let (ord, reg) = st.open_epoch(win, EKind::LockAll);
                st.ws(win).lock_all = Some((ord, reg, step));
            }
            Stmt::UnlockAll { win, close } => {
                if st.ws(*win).lock_all.take().is_none() {
                    st.diag(
                        Code::E004,
                        Some(step),
                        "unlock_all without an open lock_all epoch".into(),
                    );
                }
                if close.is_blocking() {
                    st.sync_all();
                } else {
                    st.push_request(step, "iunlock_all");
                }
            }
            Stmt::Flush { win, target, local_only, close } => {
                let win = *win;
                let ws = st.ws(win);
                // The flush family requires an open passive-target epoch
                // covering the flushed target(s).
                let covered = match target {
                    Some(t) => ws.locks.contains_key(t) || ws.lock_all.is_some(),
                    None => !ws.locks.is_empty() || ws.lock_all.is_some(),
                };
                if !covered {
                    let what = match target {
                        Some(t) => format!("rank {t}"),
                        None => "any target".into(),
                    };
                    st.diag(
                        Code::E004,
                        Some(step),
                        format!(
                            "flush on window {win} without an open passive-target epoch \
                             covering {what}"
                        ),
                    );
                }
                if close.is_blocking() {
                    st.sync_all();
                    st.discharge_flushes(win, *target, *local_only);
                } else {
                    let what = if *local_only { "iflush_local" } else { "iflush" };
                    st.outstanding.push(OutReq {
                        step,
                        what,
                        flush: Some((win, *target, *local_only)),
                    });
                }
            }
            Stmt::Put { win, target, disp, len } => {
                st.data_op(step, *win, *target, *disp, *len, AccessKind::Write, "put");
            }
            Stmt::Get { win, target, disp, len } => {
                st.data_op(step, *win, *target, *disp, *len, AccessKind::Read, "get");
            }
            Stmt::Acc { win, target, disp, len, op } => {
                st.data_op(step, *win, *target, *disp, *len, AccessKind::Atomic(*op), "accumulate");
            }
            Stmt::ReadValue { win, target, disp, kind, local } => {
                st.data_op(step, *win, *target, *disp, 8, fetch_access(*kind), "value read");
                st.locals.insert(*local, (*win, *target, *disp, *kind));
            }
            Stmt::AccVal { win, target, disp, op, .. } => {
                st.data_op(step, *win, *target, *disp, 8, AccessKind::Atomic(*op), "accumulate");
            }
            Stmt::SpinUntil { local, .. } => {
                // The spin re-executes its defining read, so it needs the
                // same covering epoch; it also blocks the host until the
                // value arrives, serializing like a blocking close. A
                // spin on an unbound local is a no-op.
                if let Some(&(win, target, disp, kind)) = st.locals.get(local) {
                    st.data_op(step, win, target, disp, 8, fetch_access(kind), "spin_until");
                    st.sync_all();
                }
            }
            Stmt::WaitAll => {
                st.outstanding.clear();
                st.sync_all();
            }
            Stmt::Barrier => {}
        }
    }
    st.finish();
    st
}

/// E012 scan: every synchronization statement of a *surviving* rank whose
/// completion requires a crashed peer's cooperation. Crashed ranks' own
/// programs are skipped — they stop executing at the crash point, so their
/// dangling dependencies are the fault model's doing, not the program's.
///
/// **Recovery-aware relaxation:** a crashed rank the fault model also
/// restarts ([`IrProgram::recovered`]) is not a dependency hazard. Its NIC
/// returns after the bounded outage, the reliability sublayer retransmits
/// across it, and the epoch-aligned checkpoint restores the window and ω
/// state the peers' blocked grants and notifications depend on — every
/// dependency is eventually satisfied, so no E012 is reported for it, and
/// its own program is walked like any surviving rank's. Only ranks that
/// crash *without* recovery leave dependencies permanently unsatisfiable.
fn crashed_dependencies(p: &IrProgram) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let fatal: Vec<usize> =
        p.crashed.iter().copied().filter(|r| !p.recovered.contains(r)).collect();
    if fatal.is_empty() {
        return diags;
    }
    let dead = |r: &usize| fatal.contains(r);
    for (rank, stmts) in p.ranks.iter().enumerate() {
        if dead(&rank) {
            continue;
        }
        let mut diag = |step: usize, detail: String| {
            diags.push(Diagnostic { code: Code::E012, rank, step: Some(step), detail });
        };
        for (step, stmt) in stmts.iter().enumerate() {
            match stmt {
                Stmt::Start { group, .. } => {
                    for &t in group.iter().filter(|t| dead(t)) {
                        diag(
                            step,
                            format!(
                                "start toward rank {t}, which the fault model crashes: its \
                                 exposure epoch may never open and complete cannot terminate"
                            ),
                        );
                    }
                }
                Stmt::Post { group, .. } => {
                    for &o in group.iter().filter(|o| dead(o)) {
                        diag(
                            step,
                            format!(
                                "post toward rank {o}, which the fault model crashes: its \
                                 completion notification may never arrive and wait cannot \
                                 terminate"
                            ),
                        );
                    }
                }
                Stmt::Lock { target, .. } if dead(target) => {
                    diag(
                        step,
                        format!(
                            "lock on rank {target}, which the fault model crashes: the \
                             grant may never arrive"
                        ),
                    );
                }
                Stmt::LockAll { .. } => {
                    diag(
                        step,
                        format!(
                            "lock_all needs a grant from every rank, but the fault model \
                             crashes {fatal:?} without recovery"
                        ),
                    );
                }
                Stmt::Fence { .. } | Stmt::Barrier => {
                    let name =
                        if matches!(stmt, Stmt::Fence { .. }) { "fence" } else { "barrier" };
                    diag(
                        step,
                        format!(
                            "{name} with unrecovered crashed participant(s) {fatal:?}: the \
                             collective cannot complete"
                        ),
                    );
                }
                _ => {}
            }
        }
    }
    diags
}

/// Classify a conflicting pair: both mutate → E006, otherwise (one side is
/// a read) → E007.
fn conflict_code(a: AccessKind, b: AccessKind) -> Code {
    if a.writes() && b.writes() {
        Code::E006
    } else {
        Code::E007
    }
}

fn describe(a: &Access) -> String {
    format!(
        "rank {} stmt {} ({:?} bytes [{}, {}) of rank {}'s window {})",
        a.rank, a.step, a.kind, a.lo, a.hi, a.target, a.win
    )
}

/// Run the full static analysis. An empty result means the program is
/// protocol-clean: every run of it should match its oracle, pass the
/// trace audit, and terminate without the stall watchdog firing.
pub fn analyze(p: &IrProgram) -> Vec<Diagnostic> {
    assert_eq!(p.ranks.len(), p.n_ranks, "one statement list per rank");
    let states: Vec<RankState> = (0..p.n_ranks).map(|r| walk_rank(r, p)).collect();
    let mut diags: Vec<Diagnostic> = states.iter().flat_map(|s| s.diags.clone()).collect();

    // E012: a surviving rank's epoch structure blocks on a peer the fault
    // model crashes. The crash may land before the dependency is
    // satisfied, so without the stall watchdog the program can hang.
    diags.extend(crashed_dependencies(p));

    // Whole-job deadlock & progress passes: the cross-rank fixpoint
    // interpreter (E013/E015/E016/E017 + collective-barrier E011) and the
    // lock-acquisition-order pass (E014).
    diags.extend(crate::deadlock::deadlock_passes(p));

    // E011a: collective fence counts must agree on every rank, per
    // window (a fence is job-collective on its window).
    for w in 0..p.windows.len() {
        let count = |s: &RankState| s.wins.get(&w).map(|ws| ws.fence_calls).unwrap_or(0);
        let base = count(&states[0]);
        for s in &states[1..] {
            let c = count(s);
            if c != base {
                diags.push(Diagnostic {
                    code: Code::E011,
                    rank: s.rank,
                    step: None,
                    detail: format!(
                        "rank {} makes {c} fence calls on window {w} but rank 0 makes {base}",
                        s.rank
                    ),
                });
            }
        }
    }

    // E011b: every (origin, target, window) start count must equal the
    // count of posts at the target on that window whose group contains
    // the origin.
    for o in &states {
        for (&w, ws) in &o.wins {
            for (&t, &n_starts) in &ws.starts_toward {
                if t >= p.n_ranks {
                    continue; // reported as E002 at the start site's ops
                }
                let n_posts = states[t]
                    .wins
                    .get(&w)
                    .map(|tw| tw.posts.iter().filter(|g| g.contains(&o.rank)).count())
                    .unwrap_or(0);
                if n_starts != n_posts {
                    diags.push(Diagnostic {
                        code: Code::E011,
                        rank: o.rank,
                        step: None,
                        detail: format!(
                            "rank {} starts toward rank {t} {n_starts} time(s) on window \
                             {w} but rank {t} posts toward rank {} {n_posts} time(s)",
                            o.rank, o.rank
                        ),
                    });
                }
            }
        }
    }

    // Resolve each GATS access to its exposure instance at the target: the
    // origin's `start_seq`-th start containing t (on that window) matches
    // t's `start_seq`-th post containing the origin.
    let mut accesses: Vec<(Access, Option<usize>)> = Vec::new();
    for s in &states {
        for a in &s.accesses {
            let exposure = match &a.scope {
                Scope::Gats { start_seq } => {
                    let post = states[a.target]
                        .wins
                        .get(&a.win)
                        .and_then(|tw| {
                            tw.posts
                                .iter()
                                .enumerate()
                                .filter(|(_, g)| g.contains(&a.rank))
                                .nth(*start_seq)
                                .map(|(i, _)| i)
                        });
                    if post.is_none() {
                        continue; // unmatched start: E011 already reported
                    }
                    post
                }
                _ => None,
            };
            accesses.push((a.clone(), exposure));
        }
    }

    // E006/E007: cross-origin conflicts within one concurrency scope.
    // Same-origin same-target operations are per-channel FIFO ordered by
    // the runtime, so only different origins can race here.
    for (i, (a, ea)) in accesses.iter().enumerate() {
        for (b, eb) in &accesses[i + 1..] {
            if a.rank == b.rank || a.target != b.target || a.win != b.win {
                continue;
            }
            let concurrent = match (&a.scope, &b.scope) {
                (Scope::FencePhase(x), Scope::FencePhase(y)) => x == y,
                (Scope::Gats { .. }, Scope::Gats { .. }) => ea == eb,
                (Scope::Shared, Scope::Shared) => true,
                _ => false,
            };
            if !concurrent {
                continue;
            }
            if let Some((lo, hi)) = overlap(a, b) {
                if a.kind.conflicts_with(b.kind) {
                    diags.push(Diagnostic {
                        code: conflict_code(a.kind, b.kind),
                        rank: a.rank,
                        step: Some(a.step),
                        detail: format!(
                            "bytes [{lo}, {hi}) of rank {}'s window {}: {} is unordered \
                             against {}",
                            a.target,
                            a.win,
                            describe(a),
                            describe(b)
                        ),
                    });
                }
            }
        }
    }

    // E009: same-origin accesses in different epochs of one reorder-
    // concurrency region — the flags let the runtime progress those epochs
    // out of order, so conflicting overlaps are schedule-dependent.
    if p.reorder {
        for s in &states {
            for (i, a) in s.accesses.iter().enumerate() {
                for b in &s.accesses[i + 1..] {
                    if a.target != b.target
                        || a.win != b.win
                        || a.epoch == b.epoch
                        || a.region != b.region
                    {
                        continue;
                    }
                    if let Some((lo, hi)) = overlap(a, b) {
                        if a.kind.conflicts_with(b.kind) {
                            diags.push(Diagnostic {
                                code: Code::E009,
                                rank: s.rank,
                                step: Some(a.step),
                                detail: format!(
                                    "reorder flags allow epochs {} and {} to progress \
                                     concurrently, but bytes [{lo}, {hi}) of rank {}'s \
                                     window {} conflict: {} vs {}",
                                    a.epoch,
                                    b.epoch,
                                    a.target,
                                    a.win,
                                    describe(a),
                                    describe(b)
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    diags
}
