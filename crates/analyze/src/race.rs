//! Dynamic happens-before race detection over a job's sync trace.
//!
//! ThreadSanitizer-style vector clocks, but the "threads" are ranks and
//! the synchronization edges are the RMA epoch protocol's own messages,
//! all of which the engine already traces:
//!
//! | edge | trace events (send → apply) |
//! |------|-----------------------------|
//! | post → start (exposure grant) | `GrantSent` → `GrantApplied` (plane Gats) |
//! | lock grant | `GrantSent` → `GrantApplied` (plane Lock) |
//! | complete → wait (GATS done) | `EpochDoneSent` → `EpochDoneApplied` (plane Gats) |
//! | unlock → next lock | `EpochDoneSent` → `EpochDoneApplied` (plane Lock) |
//! | fence barrier | `FenceDoneSent` → `FenceDoneApplied` (per peer, per seq) |
//!
//! Every [`SyncEvent::DataIssued`] carries the target byte range and an
//! [`AccessKind`]; [`SyncEvent::LocalAccess`] records a rank touching its
//! own window. Two accesses to overlapping bytes of one window owner race
//! when their kinds conflict, they come from different ranks, and neither
//! happens-before the other. Same-rank same-target accesses are always
//! ordered here (program order plus per-channel FIFO delivery), so only
//! cross-rank pairs are candidates.

use std::collections::HashMap;

use mpisim_core::trace::{AccessKind, Plane, SyncEvent, SyncRecord};
use mpisim_core::JobReport;

/// One side of a detected race.
#[derive(Clone, Debug)]
pub struct RaceAccess {
    /// Rank performing the access.
    pub rank: usize,
    /// Byte displacement in the owner's window.
    pub disp: usize,
    /// Length in bytes.
    pub len: usize,
    /// How the bytes were touched.
    pub kind: AccessKind,
    /// `true` for a local (same-rank) window access, `false` for an RMA
    /// operation issued toward a remote window.
    pub local: bool,
}

/// A pair of conflicting window accesses unordered by happens-before.
#[derive(Clone, Debug)]
pub struct Race {
    /// Window id.
    pub win: u32,
    /// Rank owning the window memory.
    pub owner: usize,
    /// Overlap start (byte).
    pub lo: usize,
    /// Overlap end (exclusive).
    pub hi: usize,
    /// The earlier access in trace order.
    pub first: RaceAccess,
    /// The later access in trace order.
    pub second: RaceAccess,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let side = |a: &RaceAccess| {
            format!(
                "rank {} {}{:?} [{}, {})",
                a.rank,
                if a.local { "local " } else { "" },
                a.kind,
                a.disp,
                a.disp + a.len
            )
        };
        write!(
            f,
            "race on bytes [{}, {}) of rank {}'s window {}: {} unordered against {}",
            self.lo,
            self.hi,
            self.owner,
            self.win,
            side(&self.first),
            side(&self.second)
        )
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum EdgeKey {
    Grant { from: usize, to: usize, win: u32, plane: Plane, id: u64 },
    Done { from: usize, to: usize, win: u32, plane: Plane, id: u64 },
    Fence { from: usize, to: usize, win: u32, seq: u64 },
}

struct Shadow {
    rank: usize,
    lo: usize,
    hi: usize,
    kind: AccessKind,
    /// The accessor's own clock component at access time: a later access
    /// by rank `r` is ordered after this one iff `clock_r[rank] >= own`.
    own: u64,
    local: bool,
}

fn join(into: &mut [u64], other: &[u64]) {
    for (a, b) in into.iter_mut().zip(other) {
        *a = (*a).max(*b);
    }
}

/// Scan the sync trace of `report` and return every conflicting,
/// happens-before-unordered access pair. An empty result means the run is
/// race-free under the traced synchronization edges.
pub fn detect_races(report: &JobReport) -> Vec<Race> {
    detect_races_in(&report.sync_trace, report.ranks.len())
}

/// [`detect_races`] over a bare sync trace (`n` = number of ranks). The
/// trace must be in global virtual-time order, as the runtime records it.
pub fn detect_races_in(trace: &[SyncRecord], n: usize) -> Vec<Race> {
    let mut clocks: Vec<Vec<u64>> = vec![vec![0; n]; n];
    let mut snapshots: HashMap<EdgeKey, Vec<u64>> = HashMap::new();
    // Shadow state per (win, owner): every access recorded so far.
    let mut shadow: HashMap<(u32, usize), Vec<Shadow>> = HashMap::new();
    let mut races = Vec::new();

    for r in trace {
        let me = r.rank.idx();
        let peer = r.peer.idx();
        let win = r.win.0;
        // Every traced event is a distinct point in its rank's history.
        clocks[me][me] += 1;
        match r.event {
            SyncEvent::GrantSent { id } => {
                snapshots.insert(
                    EdgeKey::Grant { from: me, to: peer, win, plane: r.plane, id },
                    clocks[me].clone(),
                );
            }
            SyncEvent::GrantApplied { id } => {
                if let Some(snap) =
                    snapshots.get(&EdgeKey::Grant { from: peer, to: me, win, plane: r.plane, id })
                {
                    let snap = snap.clone();
                    join(&mut clocks[me], &snap);
                }
            }
            SyncEvent::EpochDoneSent { id, .. } => {
                snapshots.insert(
                    EdgeKey::Done { from: me, to: peer, win, plane: r.plane, id },
                    clocks[me].clone(),
                );
            }
            SyncEvent::EpochDoneApplied { id } => {
                if let Some(snap) =
                    snapshots.get(&EdgeKey::Done { from: peer, to: me, win, plane: r.plane, id })
                {
                    let snap = snap.clone();
                    join(&mut clocks[me], &snap);
                }
            }
            SyncEvent::FenceDoneSent { seq } => {
                snapshots.insert(EdgeKey::Fence { from: me, to: peer, win, seq }, clocks[me].clone());
            }
            SyncEvent::FenceDoneApplied { seq } => {
                if let Some(snap) =
                    snapshots.get(&EdgeKey::Fence { from: peer, to: me, win, seq })
                {
                    let snap = snap.clone();
                    join(&mut clocks[me], &snap);
                }
            }
            SyncEvent::DataIssued { disp, len, access, .. } => {
                record_access(
                    &mut shadow,
                    &clocks,
                    &mut races,
                    win,
                    peer,
                    me,
                    disp,
                    len,
                    access,
                    false,
                );
            }
            SyncEvent::LocalAccess { disp, len, access } => {
                record_access(
                    &mut shadow,
                    &clocks,
                    &mut races,
                    win,
                    me,
                    me,
                    disp,
                    len,
                    access,
                    true,
                );
            }
            SyncEvent::AccessAssigned { .. } => {}
        }
    }
    races
}

#[allow(clippy::too_many_arguments)]
fn record_access(
    shadow: &mut HashMap<(u32, usize), Vec<Shadow>>,
    clocks: &[Vec<u64>],
    races: &mut Vec<Race>,
    win: u32,
    owner: usize,
    rank: usize,
    disp: usize,
    len: usize,
    kind: AccessKind,
    local: bool,
) {
    let cell = shadow.entry((win, owner)).or_default();
    for prev in cell.iter() {
        if prev.rank == rank {
            continue; // program order + per-channel FIFO
        }
        let lo = prev.lo.max(disp);
        let hi = prev.hi.min(disp + len);
        if lo >= hi || !prev.kind.conflicts_with(kind) {
            continue;
        }
        // prev happens-before this access iff the accessor has observed
        // prev's own clock component.
        if clocks[rank][prev.rank] >= prev.own {
            continue;
        }
        races.push(Race {
            win,
            owner,
            lo,
            hi,
            first: RaceAccess {
                rank: prev.rank,
                disp: prev.lo,
                len: prev.hi - prev.lo,
                kind: prev.kind,
                local: prev.local,
            },
            second: RaceAccess { rank, disp, len, kind, local },
        });
    }
    cell.push(Shadow { rank, lo: disp, hi: disp + len, kind, own: clocks[rank][rank], local });
}
