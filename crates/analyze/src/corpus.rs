//! Generated-erroneous program corpus.
//!
//! Seeded families of protocol-violating programs — the analyzer must
//! flag **every** member (0 missed violations is a CI gate):
//!
//! * [`NegFamily::DroppedClose`] — a well-formed prefix whose final epoch
//!   is opened but never closed (missing complete / wait / unlock /
//!   unlock_all / closing fence) → `E003`.
//! * [`NegFamily::OutOfEpochOp`] — a well-formed program with one data
//!   operation inserted where no access epoch is open → `E001`.
//! * [`NegFamily::ConflictingPuts`] — two origins touch overlapping bytes
//!   of one target window inside the same fence phase → `E006` (or `E007`
//!   when one side is a get).
//! * [`NegFamily::CrashedDependency`] — a well-formed program whose epoch
//!   structure blocks on a peer the fault model crashes (a GATS start
//!   toward a rank whose exposure may never open) → `E012`.
//!
//! Six **deadlock families** ([`NegFamily::DEADLOCKS`]) whose members
//! are *certain* deadlocks under every schedule — each is both flagged
//! statically (E013–E018) and executed by `mpisim-check --deadlocks`,
//! where the PR-4 stall watchdog must cancel the stuck epoch
//! (`Degradation::EpochStall`), cross-validating the static pass against
//! the dynamic layer:
//!
//! * [`NegFamily::PscwCycle`] — two ranks each `start → complete` toward
//!   the other *before* posting their own exposure → E013.
//! * [`NegFamily::LockOrderInversion`] — ABBA exclusive-lock acquisition
//!   across two ranks, with a flush+barrier proving both first holds are
//!   established before either second acquisition → E014.
//! * [`NegFamily::MissingExposure`] — a GATS access epoch whose target
//!   never posts → E015.
//! * [`NegFamily::FenceMismatch`] — one rank fences a window one more
//!   time than the other participants → E016.
//! * [`NegFamily::OrphanWait`] — a `waitall` consuming an `icomplete`
//!   request whose grant can never arrive → E017.
//! * [`NegFamily::ValueDeadlock`] — a rank spins on a fetched flag word
//!   while every peer publishes a *different* constant, so the expected
//!   value is outside the abstract value domain → E018. At runtime the
//!   peers' closing fence blocks on the spinner past the watchdog
//!   budget (the spin itself is execution-bounded so the run
//!   terminates); [`generate_value_clean`] is the satisfiable twin the
//!   analyzer must pass and the executor must run stall-free.
//!
//! [`catalog_cases`] additionally provides one minimal deterministic
//! positive program per diagnostic code — the CLI sweeps both.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mpisim_core::ReduceOp;

use crate::diag::Code;
use crate::ir::{Close, FetchKind, IrProgram, Stmt};

/// Window size used by every corpus program.
pub const NEG_WIN_BYTES: usize = 64;

/// A generated-erroneous program family.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NegFamily {
    /// Final epoch's close is dropped → `E003`.
    DroppedClose,
    /// One data operation outside any epoch → `E001`.
    OutOfEpochOp,
    /// Cross-origin overlapping conflicting accesses in one fence phase →
    /// `E006`/`E007`.
    ConflictingPuts,
    /// Epoch structure blocks on a crashed peer → `E012`.
    CrashedDependency,
    /// Mutual start/complete-before-post between two ranks → `E013`.
    PscwCycle,
    /// ABBA exclusive-lock acquisition across two ranks → `E014`.
    LockOrderInversion,
    /// GATS access epoch whose target never posts → `E015`.
    MissingExposure,
    /// One rank makes an extra collective fence call → `E016`.
    FenceMismatch,
    /// `waitall` on an `icomplete` that can never be granted → `E017`.
    OrphanWait,
    /// Spin on a fetched flag value no reachable write supplies →
    /// `E018`.
    ValueDeadlock,
}

impl NegFamily {
    /// All families, in sweep order.
    pub const ALL: [NegFamily; 10] = [
        NegFamily::DroppedClose,
        NegFamily::OutOfEpochOp,
        NegFamily::ConflictingPuts,
        NegFamily::CrashedDependency,
        NegFamily::PscwCycle,
        NegFamily::LockOrderInversion,
        NegFamily::MissingExposure,
        NegFamily::FenceMismatch,
        NegFamily::OrphanWait,
        NegFamily::ValueDeadlock,
    ];

    /// The certain-deadlock families: every member stalls under every
    /// execution schedule, so `mpisim-check` cross-validates them against
    /// the stall watchdog.
    pub const DEADLOCKS: [NegFamily; 6] = [
        NegFamily::PscwCycle,
        NegFamily::LockOrderInversion,
        NegFamily::MissingExposure,
        NegFamily::FenceMismatch,
        NegFamily::OrphanWait,
        NegFamily::ValueDeadlock,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            NegFamily::DroppedClose => "dropped-close",
            NegFamily::OutOfEpochOp => "out-of-epoch-op",
            NegFamily::ConflictingPuts => "conflicting-puts",
            NegFamily::CrashedDependency => "crashed-dependency",
            NegFamily::PscwCycle => "pscw-cycle",
            NegFamily::LockOrderInversion => "lock-inversion",
            NegFamily::MissingExposure => "missing-exposure",
            NegFamily::FenceMismatch => "fence-mismatch",
            NegFamily::OrphanWait => "orphan-wait",
            NegFamily::ValueDeadlock => "value-deadlock",
        }
    }
}

/// One generated erroneous program plus the diagnostic the analyzer is
/// required to produce for it.
#[derive(Clone, Debug)]
pub struct NegCase {
    /// The erroneous program.
    pub program: IrProgram,
    /// The code that must appear in `analyze(&program)`.
    pub expect: Code,
}

fn ops_for(rng: &mut SmallRng, win: usize, target: usize) -> Vec<Stmt> {
    let n = rng.gen_range(1..3usize);
    (0..n)
        .map(|_| {
            let len = rng.gen_range(1..8usize);
            let disp = rng.gen_range(0..NEG_WIN_BYTES - len);
            match rng.gen_range(0..3u32) {
                0 => Stmt::Put { win, target, disp, len },
                1 => Stmt::Get { win, target, disp, len },
                _ => Stmt::Acc { win, target, disp: (disp / 8) * 8, len: 8, op: ReduceOp::Sum },
            }
        })
        .collect()
}

/// Append one well-formed epoch (with its close) on window 0 to rank 0's
/// program and matching cooperation to the other ranks. `close` controls
/// whether the epoch-closing statement is emitted.
fn push_epoch(rng: &mut SmallRng, p: &mut IrProgram, close: bool, allow_fence: bool) {
    let n = p.n_ranks;
    let win = 0;
    let target = rng.gen_range(1..n);
    let kind = if allow_fence { rng.gen_range(0..4u32) } else { rng.gen_range(1..4u32) };
    match kind {
        0 => {
            // Fence phase (collective).
            for r in 0..n {
                p.ranks[r].push(Stmt::Fence { win, close: Close::Blocking });
            }
            p.ranks[0].extend(ops_for(rng, win, target));
            if close {
                for r in 0..n {
                    p.ranks[r].push(Stmt::Fence { win, close: Close::Blocking });
                }
            } else {
                // Rank 0 drops the closing fence; issuing more ops keeps
                // its trailing phase non-dormant so E003 is guaranteed.
                // (The other ranks still fence, so E011 fires too — the
                // sweep only requires the expected code to be present.)
                for r in 1..n {
                    p.ranks[r].push(Stmt::Fence { win, close: Close::Blocking });
                }
                p.ranks[0].extend(ops_for(rng, win, target));
            }
        }
        1 => {
            let group: Vec<usize> = (1..n).collect();
            p.ranks[0].push(Stmt::Start { win, group });
            p.ranks[0].extend(ops_for(rng, win, target));
            if close {
                p.ranks[0].push(Stmt::Complete { win, close: Close::Blocking });
            }
            for r in 1..n {
                p.ranks[r].push(Stmt::Post { win, group: vec![0] });
                p.ranks[r].push(Stmt::WaitEpoch { win, close: Close::Blocking });
            }
        }
        2 => {
            p.ranks[0].push(Stmt::Lock { win, target, exclusive: true, nonblocking: false });
            p.ranks[0].extend(ops_for(rng, win, target));
            if close {
                p.ranks[0].push(Stmt::Unlock { win, target, close: Close::Blocking });
            }
        }
        _ => {
            p.ranks[0].push(Stmt::LockAll { win });
            p.ranks[0].extend(ops_for(rng, win, target));
            if close {
                p.ranks[0].push(Stmt::UnlockAll { win, close: Close::Blocking });
            }
        }
    }
}

/// Deterministically generate the `index`-th erroneous program of a
/// family.
pub fn generate_negative(family: NegFamily, index: u64) -> NegCase {
    let mut rng =
        SmallRng::seed_from_u64(0xBAD_C0DE ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let n_ranks = 3;
    let mut p = IrProgram::new(n_ranks, NEG_WIN_BYTES);
    match family {
        NegFamily::DroppedClose => {
            for _ in 0..rng.gen_range(0..3usize) {
                push_epoch(&mut rng, &mut p, true, true);
            }
            push_epoch(&mut rng, &mut p, false, true);
            NegCase { program: p, expect: Code::E003 }
        }
        NegFamily::OutOfEpochOp => {
            let stray = {
                let target = rng.gen_range(1..n_ranks);
                let len = rng.gen_range(1..8usize);
                let disp = rng.gen_range(0..NEG_WIN_BYTES - len);
                Stmt::Put { win: 0, target, disp, len }
            };
            let before = rng.gen_bool(0.5);
            if before {
                p.ranks[0].push(stray);
                for _ in 0..rng.gen_range(1..3usize) {
                    push_epoch(&mut rng, &mut p, true, true);
                }
            } else {
                // No fence epochs here: a program that ever fences keeps a
                // trailing fence phase open which would legally absorb the
                // stray op (the analyzer would report E003, not E001).
                for _ in 0..rng.gen_range(1..3usize) {
                    push_epoch(&mut rng, &mut p, true, false);
                }
                p.ranks[0].push(stray);
            }
            NegCase { program: p, expect: Code::E001 }
        }
        NegFamily::ConflictingPuts => {
            // Ranks 1 and 2 access rank 0's window in the same fence
            // phase with a guaranteed byte overlap.
            let lo = rng.gen_range(0..NEG_WIN_BYTES - 16);
            let len_a = rng.gen_range(4..12usize);
            // Start the second access inside the first one's range.
            let delta = rng.gen_range(0..len_a);
            let lo_b = lo + delta;
            let len_b = rng.gen_range(1..8usize).min(NEG_WIN_BYTES - lo_b);
            let use_get = index % 2 == 1;
            for r in 0..n_ranks {
                p.ranks[r].push(Stmt::Fence { win: 0, close: Close::Blocking });
            }
            p.ranks[1].push(Stmt::Put { win: 0, target: 0, disp: lo, len: len_a });
            p.ranks[2].push(if use_get {
                Stmt::Get { win: 0, target: 0, disp: lo_b, len: len_b }
            } else {
                Stmt::Put { win: 0, target: 0, disp: lo_b, len: len_b }
            });
            for r in 0..n_ranks {
                p.ranks[r].push(Stmt::Fence { win: 0, close: Close::Blocking });
            }
            NegCase { program: p, expect: if use_get { Code::E007 } else { Code::E006 } }
        }
        NegFamily::CrashedDependency => {
            // A few well-formed non-fence epochs, then a GATS start whose
            // group contains the peer the fault model crashes: if the
            // crash lands before that peer's post, rank 0's complete can
            // never terminate.
            for _ in 0..rng.gen_range(0..3usize) {
                push_epoch(&mut rng, &mut p, true, false);
            }
            let victim = rng.gen_range(1..n_ranks);
            p.crashed = vec![victim];
            let group: Vec<usize> = (1..n_ranks).collect();
            p.ranks[0].push(Stmt::Start { win: 0, group });
            p.ranks[0].extend(ops_for(&mut rng, 0, victim));
            p.ranks[0].push(Stmt::Complete { win: 0, close: Close::Blocking });
            for r in 1..n_ranks {
                p.ranks[r].push(Stmt::Post { win: 0, group: vec![0] });
                p.ranks[r].push(Stmt::WaitEpoch { win: 0, close: Close::Blocking });
            }
            NegCase { program: p, expect: Code::E012 }
        }
        NegFamily::PscwCycle => {
            let win = deadlock_prefix(&mut rng, &mut p);
            // Ranks 0 and 1 each close an access epoch toward the other
            // before posting their own exposure: neither grant can ever
            // arrive. Start/post counts stay balanced, so this is a pure
            // cycle (no E011).
            for (me, peer) in [(0usize, 1usize), (1, 0)] {
                p.ranks[me].push(Stmt::Start { win, group: vec![peer] });
                p.ranks[me].extend(ops_for(&mut rng, win, peer));
                p.ranks[me].push(Stmt::Complete { win, close: Close::Blocking });
                p.ranks[me].push(Stmt::Post { win, group: vec![peer] });
                p.ranks[me].push(Stmt::WaitEpoch { win, close: Close::Blocking });
            }
            NegCase { program: p, expect: Code::E013 }
        }
        NegFamily::LockOrderInversion => {
            let win = deadlock_prefix(&mut rng, &mut p);
            // ABBA: rank 0 locks target 1 then 2; rank 1 locks target 2
            // then 1. The put + blocking flush proves each first hold is
            // granted before the barrier, so the inversion deadlocks
            // under every schedule. Every rank joins the barrier.
            for (me, first, second) in [(0usize, 1usize, 2usize), (1, 2, 1)] {
                p.ranks[me].extend([
                    Stmt::Lock { win, target: first, exclusive: true, nonblocking: false },
                    Stmt::Put { win, target: first, disp: 0, len: 8 },
                    Stmt::Flush { win, target: Some(first), local_only: false, close: Close::Blocking },
                    Stmt::Barrier,
                    Stmt::Lock { win, target: second, exclusive: true, nonblocking: false },
                    Stmt::Put { win, target: second, disp: 8, len: 8 },
                    Stmt::Unlock { win, target: second, close: Close::Blocking },
                    Stmt::Unlock { win, target: first, close: Close::Blocking },
                ]);
            }
            p.ranks[2].push(Stmt::Barrier);
            NegCase { program: p, expect: Code::E014 }
        }
        NegFamily::MissingExposure => {
            let win = deadlock_prefix(&mut rng, &mut p);
            // The target never posts, so rank 0's blocking complete can
            // never be granted.
            let victim = rng.gen_range(1..n_ranks);
            p.ranks[0].push(Stmt::Start { win, group: vec![victim] });
            p.ranks[0].extend(ops_for(&mut rng, win, victim));
            p.ranks[0].push(Stmt::Complete { win, close: Close::Blocking });
            NegCase { program: p, expect: Code::E015 }
        }
        NegFamily::FenceMismatch => {
            let win = deadlock_prefix(&mut rng, &mut p);
            // One collective fence phase everyone joins, then rank 0
            // alone fences again: its closing announcement set can never
            // be completed by the missing participants.
            for r in 0..n_ranks {
                p.ranks[r].push(Stmt::Fence { win, close: Close::Blocking });
            }
            let target = rng.gen_range(1..n_ranks);
            p.ranks[0].extend(ops_for(&mut rng, win, target));
            p.ranks[0].push(Stmt::Fence { win, close: Close::Blocking });
            NegCase { program: p, expect: Code::E016 }
        }
        NegFamily::OrphanWait => {
            let win = deadlock_prefix(&mut rng, &mut p);
            // The icomplete request's grant can never arrive (no matching
            // post), so the waitall can never return.
            let victim = rng.gen_range(1..n_ranks);
            p.ranks[0].push(Stmt::Start { win, group: vec![victim] });
            p.ranks[0].extend(ops_for(&mut rng, win, victim));
            p.ranks[0].push(Stmt::Complete { win, close: Close::Nonblocking });
            p.ranks[0].push(Stmt::WaitAll);
            NegCase { program: p, expect: Code::E017 }
        }
        NegFamily::ValueDeadlock => {
            push_value_spin(&mut rng, &mut p, false);
            NegCase { program: p, expect: Code::E018 }
        }
    }
}

/// Append the value-spin protocol to `p` (3 ranks): rank 0 spins on an
/// 8-byte flag slot of its own window on a dedicated flag window while
/// the peers publish a constant there via atomic `Replace`, then every
/// rank joins a two-call fence tail. With `satisfiable` the peers
/// publish exactly the expected value — the spin terminates, the
/// program is analyzer-clean and runs stall-free. Without it they
/// publish a *different* constant: the expected value is outside the
/// abstract value domain (E018), and at runtime the peers' closing
/// fence blocks on the spinner past the watchdog budget while the
/// execution-bounded spin eventually gives up, so the run terminates
/// with the stall recorded.
fn push_value_spin(rng: &mut SmallRng, p: &mut IrProgram, satisfiable: bool) {
    let n = p.n_ranks;
    // A few clean epochs on window 0, then a dedicated flag window so
    // no prefix write overlaps the spun slot (an overlapping unknown
    // write would be ⊤ and legitimately suppress E018).
    for _ in 0..rng.gen_range(0..3usize) {
        push_epoch(rng, p, true, true);
    }
    let flag_win = p.add_window(NEG_WIN_BYTES);
    let disp = rng.gen_range(0..NEG_WIN_BYTES / 8) * 8;
    let published = rng.gen_range(1..=100u64);
    let expect =
        if satisfiable { published } else { published + rng.gen_range(1..=100u64) };
    for r in 1..n {
        p.ranks[r].extend([
            Stmt::Lock { win: flag_win, target: 0, exclusive: false, nonblocking: false },
            Stmt::AccVal {
                win: flag_win,
                target: 0,
                disp,
                op: ReduceOp::Replace,
                val: published,
            },
            Stmt::Unlock { win: flag_win, target: 0, close: Close::Blocking },
        ]);
    }
    p.ranks[0].extend([
        Stmt::LockAll { win: flag_win },
        Stmt::ReadValue {
            win: flag_win,
            target: 0,
            disp,
            kind: FetchKind::FetchOp(ReduceOp::NoOp),
            local: 0,
        },
        Stmt::SpinUntil { local: 0, expect },
        Stmt::UnlockAll { win: flag_win, close: Close::Blocking },
    ]);
    for _ in 0..2 {
        for r in 0..n {
            p.ranks[r].push(Stmt::Fence { win: flag_win, close: Close::Blocking });
        }
    }
}

/// Deterministically generate the `index`-th *satisfiable* value-spin
/// program: the same shape as [`NegFamily::ValueDeadlock`] except the
/// peers publish exactly the expected flag value. The analyzer must
/// report nothing and the executor must run it stall-free — the clean
/// direction of the E018 cross-validation.
pub fn generate_value_clean(index: u64) -> IrProgram {
    let mut rng =
        SmallRng::seed_from_u64(0x600D_F1A6 ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut p = IrProgram::new(3, NEG_WIN_BYTES);
    push_value_spin(&mut rng, &mut p, true);
    p
}

/// Shared deadlock-family preamble: a few clean epochs on window 0, and
/// (half the time) a second window for the deadlocking tail — so the
/// analyzer's multi-window tracking and the IR executor both get
/// exercised. Returns the window the tail should use.
fn deadlock_prefix(rng: &mut SmallRng, p: &mut IrProgram) -> usize {
    for _ in 0..rng.gen_range(0..3usize) {
        push_epoch(rng, p, true, true);
    }
    if rng.gen_bool(0.5) {
        p.add_window(NEG_WIN_BYTES)
    } else {
        0
    }
}

/// One minimal deterministic positive program per diagnostic code: the
/// analyzer must report exactly that code's violation. Used by the CLI
/// sweep and the per-code diagnostics tests.
pub fn catalog_cases() -> Vec<(Code, IrProgram)> {
    let mut out = Vec::new();

    // E001: put before any epoch opens.
    let mut p = IrProgram::new(2, NEG_WIN_BYTES);
    p.ranks[0].push(Stmt::Put { win: 0, target: 1, disp: 0, len: 8 });
    out.push((Code::E001, p));

    // E002: op toward a rank outside the start group.
    let mut p = IrProgram::new(3, NEG_WIN_BYTES);
    p.ranks[0].extend([
        Stmt::Start { win: 0, group: vec![1] },
        Stmt::Put { win: 0, target: 2, disp: 0, len: 8 },
        Stmt::Complete { win: 0, close: Close::Blocking },
    ]);
    p.ranks[1].extend([
        Stmt::Post { win: 0, group: vec![0] },
        Stmt::WaitEpoch { win: 0, close: Close::Blocking },
    ]);
    out.push((Code::E002, p));

    // E003: lock never unlocked.
    let mut p = IrProgram::new(2, NEG_WIN_BYTES);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
    ]);
    out.push((Code::E003, p));

    // E004: unlock of a rank that was never locked.
    let mut p = IrProgram::new(2, NEG_WIN_BYTES);
    p.ranks[0].push(Stmt::Unlock { win: 0, target: 1, close: Close::Blocking });
    out.push((Code::E004, p));

    // E005: lock_all while a GATS access epoch is open.
    let mut p = IrProgram::new(2, NEG_WIN_BYTES);
    p.ranks[0].extend([
        Stmt::Start { win: 0, group: vec![1] },
        Stmt::LockAll { win: 0 },
        Stmt::UnlockAll { win: 0, close: Close::Blocking },
        Stmt::Complete { win: 0, close: Close::Blocking },
    ]);
    p.ranks[1].extend([
        Stmt::Post { win: 0, group: vec![0] },
        Stmt::WaitEpoch { win: 0, close: Close::Blocking },
    ]);
    out.push((Code::E005, p));

    // E006: cross-origin overlapping puts in one fence phase.
    let mut p = IrProgram::new(3, NEG_WIN_BYTES);
    for r in 0..3 {
        p.ranks[r].push(Stmt::Fence { win: 0, close: Close::Blocking });
    }
    p.ranks[1].push(Stmt::Put { win: 0, target: 0, disp: 0, len: 8 });
    p.ranks[2].push(Stmt::Put { win: 0, target: 0, disp: 4, len: 8 });
    for r in 0..3 {
        p.ranks[r].push(Stmt::Fence { win: 0, close: Close::Blocking });
    }
    out.push((Code::E006, p));

    // E007: cross-origin put/get overlap in one fence phase.
    let mut p = IrProgram::new(3, NEG_WIN_BYTES);
    for r in 0..3 {
        p.ranks[r].push(Stmt::Fence { win: 0, close: Close::Blocking });
    }
    p.ranks[1].push(Stmt::Put { win: 0, target: 0, disp: 0, len: 8 });
    p.ranks[2].push(Stmt::Get { win: 0, target: 0, disp: 4, len: 8 });
    for r in 0..3 {
        p.ranks[r].push(Stmt::Fence { win: 0, close: Close::Blocking });
    }
    out.push((Code::E007, p));

    // E008: iflush request never waited (and never discharged by a later
    // covering blocking flush).
    let mut p = IrProgram::new(2, NEG_WIN_BYTES);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Flush { win: 0, target: Some(1), local_only: false, close: Close::Nonblocking },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    out.push((Code::E008, p));

    // E009: reorder flags + unsafe fence reorder + conflicting puts in
    // adjacent fence phases.
    let mut p = IrProgram::new(2, NEG_WIN_BYTES);
    p.reorder = true;
    p.unsafe_fence_reorder = true;
    p.ranks[0].extend([
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Fence { win: 0, close: Close::Nonblocking },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Fence { win: 0, close: Close::Nonblocking },
        Stmt::WaitAll,
    ]);
    p.ranks[1].extend([
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Fence { win: 0, close: Close::Blocking },
    ]);
    out.push((Code::E009, p));

    // E010: put past the end of the window.
    let mut p = IrProgram::new(2, NEG_WIN_BYTES);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: NEG_WIN_BYTES - 4, len: 8 },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    out.push((Code::E010, p));

    // E011: unequal job-wide barrier counts (fence-count mismatches now
    // also classify as E016; the bare barrier keeps E011's catalog entry
    // minimal and distinct).
    let mut p = IrProgram::new(2, NEG_WIN_BYTES);
    p.ranks[0].extend([Stmt::Barrier, Stmt::Barrier]);
    p.ranks[1].push(Stmt::Barrier);
    out.push((Code::E011, p));

    // E012: start toward a peer the fault model crashes.
    let mut p = IrProgram::new(3, NEG_WIN_BYTES);
    p.crashed = vec![2];
    p.ranks[0].extend([
        Stmt::Start { win: 0, group: vec![1, 2] },
        Stmt::Put { win: 0, target: 2, disp: 0, len: 8 },
        Stmt::Complete { win: 0, close: Close::Blocking },
    ]);
    for r in 1..3 {
        p.ranks[r].extend([
            Stmt::Post { win: 0, group: vec![0] },
            Stmt::WaitEpoch { win: 0, close: Close::Blocking },
        ]);
    }
    out.push((Code::E012, p));

    // E013: mutual complete-before-post cycle between two ranks.
    let mut p = IrProgram::new(2, NEG_WIN_BYTES);
    for (me, peer) in [(0usize, 1usize), (1, 0)] {
        p.ranks[me].extend([
            Stmt::Start { win: 0, group: vec![peer] },
            Stmt::Complete { win: 0, close: Close::Blocking },
            Stmt::Post { win: 0, group: vec![peer] },
            Stmt::WaitEpoch { win: 0, close: Close::Blocking },
        ]);
    }
    out.push((Code::E013, p));

    // E014: ABBA exclusive-lock inversion across two ranks.
    let mut p = IrProgram::new(3, NEG_WIN_BYTES);
    for (me, first, second) in [(0usize, 1usize, 2usize), (1, 2, 1)] {
        p.ranks[me].extend([
            Stmt::Lock { win: 0, target: first, exclusive: true, nonblocking: false },
            Stmt::Put { win: 0, target: first, disp: 0, len: 8 },
            Stmt::Flush { win: 0, target: Some(first), local_only: false, close: Close::Blocking },
            Stmt::Barrier,
            Stmt::Lock { win: 0, target: second, exclusive: true, nonblocking: false },
            Stmt::Put { win: 0, target: second, disp: 8, len: 8 },
            Stmt::Unlock { win: 0, target: second, close: Close::Blocking },
            Stmt::Unlock { win: 0, target: first, close: Close::Blocking },
        ]);
    }
    p.ranks[2].push(Stmt::Barrier);
    out.push((Code::E014, p));

    // E015: blocking complete toward a rank that never posts.
    let mut p = IrProgram::new(2, NEG_WIN_BYTES);
    p.ranks[0].extend([
        Stmt::Start { win: 0, group: vec![1] },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Complete { win: 0, close: Close::Blocking },
    ]);
    out.push((Code::E015, p));

    // E016: rank 0 fences once more than rank 1.
    let mut p = IrProgram::new(2, NEG_WIN_BYTES);
    p.ranks[0].extend([
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Fence { win: 0, close: Close::Blocking },
    ]);
    p.ranks[1].push(Stmt::Fence { win: 0, close: Close::Blocking });
    out.push((Code::E016, p));

    // E017: waitall on an icomplete whose grant never arrives.
    let mut p = IrProgram::new(2, NEG_WIN_BYTES);
    p.ranks[0].extend([
        Stmt::Start { win: 0, group: vec![1] },
        Stmt::Complete { win: 0, close: Close::Nonblocking },
        Stmt::WaitAll,
    ]);
    out.push((Code::E017, p));

    // E018: spin on a flag value the peer never publishes (it replaces
    // the slot with 1, the spin wants 2 — byte 0 is uncoverable).
    let mut p = IrProgram::new(2, NEG_WIN_BYTES);
    p.ranks[0].extend([
        Stmt::LockAll { win: 0 },
        Stmt::ReadValue {
            win: 0,
            target: 0,
            disp: 0,
            kind: FetchKind::FetchOp(ReduceOp::NoOp),
            local: 0,
        },
        Stmt::SpinUntil { local: 0, expect: 2 },
        Stmt::UnlockAll { win: 0, close: Close::Blocking },
    ]);
    p.ranks[1].extend([
        Stmt::Lock { win: 0, target: 0, exclusive: false, nonblocking: false },
        Stmt::AccVal { win: 0, target: 0, disp: 0, op: ReduceOp::Replace, val: 1 },
        Stmt::Unlock { win: 0, target: 0, close: Close::Blocking },
    ]);
    out.push((Code::E018, p));

    out
}

/// One minimal deterministic E-clean program per *advisory* code: the
/// slack pass ([`crate::analyze_slack`]) must report that code. Used by
/// the CLI `--catalog` sweep and the W-series diagnostics tests.
pub fn slack_catalog_cases() -> Vec<(Code, IrProgram)> {
    let mut out = Vec::new();

    // W001: blocking flush whose guarantee nothing consumes before the
    // epoch's own unlock.
    let mut p = IrProgram::new(2, NEG_WIN_BYTES);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Flush { win: 0, target: Some(1), local_only: false, close: Close::Blocking },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
    ]);
    out.push((Code::W001, p));

    // W002: fence phase close with no dependent use before end of
    // program (the trailing barrier is conflict-free: only rank 0
    // writes).
    let mut p = IrProgram::new(2, NEG_WIN_BYTES);
    p.ranks[0].extend([
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Barrier,
    ]);
    p.ranks[1].extend([
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Fence { win: 0, close: Close::Blocking },
        Stmt::Barrier,
    ]);
    out.push((Code::W002, p));

    // W003: unlock whose completion no later statement depends on.
    let mut p = IrProgram::new(2, NEG_WIN_BYTES);
    p.ranks[0].extend([
        Stmt::Lock { win: 0, target: 1, exclusive: true, nonblocking: false },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Unlock { win: 0, target: 1, close: Close::Blocking },
        Stmt::Barrier,
    ]);
    p.ranks[1].push(Stmt::Barrier);
    out.push((Code::W003, p));

    // W004: start group names rank 2 but the epoch only operates toward
    // rank 1.
    let mut p = IrProgram::new(3, NEG_WIN_BYTES);
    p.ranks[0].extend([
        Stmt::Start { win: 0, group: vec![1, 2] },
        Stmt::Put { win: 0, target: 1, disp: 0, len: 8 },
        Stmt::Complete { win: 0, close: Close::Blocking },
    ]);
    for r in 1..3 {
        p.ranks[r].extend([
            Stmt::Post { win: 0, group: vec![0] },
            Stmt::WaitEpoch { win: 0, close: Close::Blocking },
        ]);
    }
    out.push((Code::W004, p));

    // W005: exposure epoch whose matched access epoch never operates
    // toward the exposing rank.
    let mut p = IrProgram::new(2, NEG_WIN_BYTES);
    p.ranks[0].extend([
        Stmt::Start { win: 0, group: vec![1] },
        Stmt::Complete { win: 0, close: Close::Blocking },
    ]);
    p.ranks[1].extend([
        Stmt::Post { win: 0, group: vec![0] },
        Stmt::WaitEpoch { win: 0, close: Close::Blocking },
    ]);
    out.push((Code::W005, p));

    out
}
