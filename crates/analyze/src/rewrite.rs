//! Mechanical application of the slack pass: rewrite an [`IrProgram`]
//! so every relaxable synchronization becomes its nonblocking form.
//!
//! The rewriter consumes [`crate::analyze_slack`] findings and applies,
//! per rank:
//!
//! * **relax** — a `Relaxable` epoch close flips `Close::Blocking` to
//!   `Close::Nonblocking` (fence→ifence, complete→icomplete,
//!   wait→iwait, unlock→iunlock, unlock_all→iunlock_all);
//! * **defer** — the relaxed close's completion request is consumed at
//!   the finding's wait point: an existing `WaitAll`, a fresh `WaitAll`
//!   inserted immediately before the earliest dependent use, or a
//!   trailing `WaitAll` appended at end of program;
//! * **localize** — a `Relaxable` blocking flush becomes `flush_local`
//!   (per the E008 age-stamp rule the later local stamp still completes
//!   every local-only `iflush` request it discharged);
//! * **elide** — an `Elidable` blocking flush is deleted.
//!
//! Rewriting runs the classify→apply cycle to a **fixpoint**: an
//! inserted `WaitAll` is a new free deferred-wait landing point that can
//! turn a previously `Required` sync `Relaxable` on the next pass, and
//! each pass that changes anything strictly decreases the number of
//! blocking synchronization points (relax and elide remove one each; a
//! localized flush re-classifies `Required` next pass), so the loop
//! terminates and [`rewrite`] is idempotent by construction —
//! `rewrite(rewrite(p)) == rewrite(p)`.
//!
//! [`RewriteMode::PlantUnsound`] exists for the closed-loop validator's
//! exit-inverted self-test: after the sound rewrite it deletes one
//! synchronization statement outright (a fence call, else a barrier,
//! else a blocking unlock), which is exactly the kind of over-eager
//! "optimization" the differential check must catch — via a runtime
//! stall/deadlock, a memory divergence, or a watchdog degradation.

use crate::ir::{Close, IrProgram, Stmt};
use crate::slack::{analyze_slack, SlackClass, SyncKind};

/// Whether to apply only provably-safe relaxations or to additionally
/// plant one unsound deletion (for the validator's self-test).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RewriteMode {
    /// Apply exactly the slack pass's `Relaxable`/`Elidable` verdicts.
    Sound,
    /// Sound rewrite **plus** one deliberately unsound deletion on rank
    /// 0 (first fence call, else first barrier, else first blocking
    /// unlock). The differential validator must flag the result.
    PlantUnsound,
}

/// What the rewriter did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RewriteReport {
    /// Blocking epoch closes flipped to their nonblocking form.
    pub relaxed: usize,
    /// Blocking flushes deleted outright.
    pub elided: usize,
    /// Blocking flushes weakened to `flush_local`.
    pub localized: usize,
    /// `WaitAll` statements inserted (deferred-wait landing points).
    pub waits_inserted: usize,
    /// Classify→apply passes until the fixpoint (≥ 1).
    pub passes: usize,
    /// `PlantUnsound` only: `(rank, original step)` of the deleted
    /// statement.
    pub planted: Option<(usize, usize)>,
}

impl RewriteReport {
    /// Whether any rewrite fired (the validator only scores programs
    /// where it did).
    pub fn changed(&self) -> bool {
        self.relaxed + self.elided + self.localized + self.waits_inserted > 0
            || self.planted.is_some()
    }
}

/// Apply every safe relaxation to a fixpoint. Returns the rewritten
/// program and a report; `report.changed()` is `false` when the program
/// had no slack (the result then equals the input).
pub fn rewrite(p: &IrProgram) -> (IrProgram, RewriteReport) {
    rewrite_with(p, RewriteMode::Sound)
}

/// [`rewrite`] with an explicit [`RewriteMode`].
pub fn rewrite_with(p: &IrProgram, mode: RewriteMode) -> (IrProgram, RewriteReport) {
    let mut cur = p.clone();
    let mut report = RewriteReport::default();
    // Each changing pass strictly decreases the count of blocking sync
    // points, so this terminates; the bound is belt and braces.
    let max_passes = 2 + cur.ranks.iter().map(Vec::len).sum::<usize>();
    loop {
        report.passes += 1;
        let (next, changed) = apply_once(&cur, &mut report);
        cur = next;
        if !changed || report.passes >= max_passes {
            break;
        }
    }
    if mode == RewriteMode::PlantUnsound {
        report.planted = plant_unsound(&mut cur);
    }
    (cur, report)
}

/// One classify→apply pass. Returns the rewritten program and whether
/// anything fired.
fn apply_once(p: &IrProgram, report: &mut RewriteReport) -> (IrProgram, bool) {
    let slack = analyze_slack(p);
    let mut out = p.clone();
    let mut changed = false;
    for rank in 0..p.n_ranks {
        let mut relax: Vec<usize> = Vec::new();
        let mut elide: Vec<usize> = Vec::new();
        let mut localize: Vec<usize> = Vec::new();
        let mut insert_before: Vec<usize> = Vec::new();
        let mut trailing_wait = false;
        for f in slack.findings.iter().filter(|f| f.rank == rank) {
            match (f.class, f.kind) {
                (SlackClass::Relaxable, SyncKind::Flush) => localize.push(f.step),
                (SlackClass::Relaxable, _) => {
                    relax.push(f.step);
                    match f.wait_before {
                        Some(d) if f.insert_wait => insert_before.push(d),
                        Some(_) => {} // existing WaitAll consumes it
                        None => trailing_wait = true,
                    }
                }
                (SlackClass::Elidable, SyncKind::Flush) => elide.push(f.step),
                _ => {}
            }
        }
        insert_before.sort_unstable();
        insert_before.dedup();
        if relax.is_empty() && elide.is_empty() && localize.is_empty() {
            continue;
        }
        changed = true;
        report.relaxed += relax.len();
        report.elided += elide.len();
        report.localized += localize.len();
        report.waits_inserted += insert_before.len() + usize::from(trailing_wait);
        let mut stmts = Vec::with_capacity(p.ranks[rank].len() + insert_before.len() + 1);
        for (i, stmt) in p.ranks[rank].iter().enumerate() {
            if insert_before.binary_search(&i).is_ok() {
                stmts.push(Stmt::WaitAll);
            }
            if elide.contains(&i) {
                continue;
            }
            let mut s = stmt.clone();
            if relax.contains(&i) {
                match &mut s {
                    Stmt::Fence { close, .. }
                    | Stmt::Complete { close, .. }
                    | Stmt::WaitEpoch { close, .. }
                    | Stmt::Unlock { close, .. }
                    | Stmt::UnlockAll { close, .. } => *close = Close::Nonblocking,
                    _ => unreachable!("relax set only holds epoch closes"),
                }
            }
            if localize.contains(&i) {
                if let Stmt::Flush { local_only, .. } = &mut s {
                    *local_only = true;
                }
            }
            stmts.push(s);
        }
        if trailing_wait {
            stmts.push(Stmt::WaitAll);
        }
        out.ranks[rank] = stmts;
    }
    (out, changed)
}

/// Delete one synchronization statement of rank 0: the first fence call
/// if any, else the first barrier, else the first blocking unlock.
/// Returns the `(rank, step)` it removed, or `None` when rank 0 has no
/// such statement (the program is left unchanged and the validator
/// skips it).
fn plant_unsound(p: &mut IrProgram) -> Option<(usize, usize)> {
    let stmts = p.ranks.get_mut(0)?;
    let victim = stmts
        .iter()
        .position(|s| matches!(s, Stmt::Fence { .. }))
        .or_else(|| stmts.iter().position(|s| matches!(s, Stmt::Barrier)))
        .or_else(|| {
            stmts.iter().position(|s| {
                matches!(s, Stmt::Unlock { close, .. } if close.is_blocking())
            })
        })?;
    stmts.remove(victim);
    Some((0, victim))
}
