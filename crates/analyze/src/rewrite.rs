//! Mechanical application of the slack pass: rewrite an [`IrProgram`]
//! so every relaxable synchronization becomes its nonblocking form.
//!
//! The rewriter consumes [`crate::analyze_slack`] findings and applies,
//! per rank:
//!
//! * **relax** — a `Relaxable` epoch close flips `Close::Blocking` to
//!   `Close::Nonblocking` (fence→ifence, complete→icomplete,
//!   wait→iwait, unlock→iunlock, unlock_all→iunlock_all);
//! * **defer** — the relaxed close's completion request is consumed at
//!   the finding's wait point: an existing `WaitAll`, a fresh `WaitAll`
//!   inserted immediately before the earliest dependent use, or a
//!   trailing `WaitAll` appended at end of program;
//! * **localize** — a `Relaxable` blocking flush becomes `flush_local`
//!   (per the E008 age-stamp rule the later local stamp still completes
//!   every local-only `iflush` request it discharged);
//! * **elide** — an `Elidable` blocking flush is deleted.
//!
//! * **shrink** — a mechanizable W004 pair ([`crate::GroupShrink`])
//!   drops the never-addressed target from the origin's `start` group
//!   *and* the origin from the matching `post`'s group. Shrinking both
//!   sides of one matched pair keeps every later k-th-occurrence
//!   pairing aligned, so cross-rank collective matching is preserved;
//!   the rewrite touches no flush or `WaitAll`, so the slack pass's
//!   never-prune-iflush-at-`WaitAll` bookkeeping invariant is
//!   untouched by it.
//!
//! Every candidate **relaxation** is additionally priced by a
//! virtual-time [`CostModel`]: relaxing buys back at most the host
//! park time the blocking call paid (scaled by the covered bytes) and
//! at most the overlap the slack region can absorb, and costs request
//! bookkeeping plus — when the deferred wait needs a fresh mid-program
//! landing point — the inserted `WaitAll`'s own synchronization.
//! Unprofitable relaxations are *skipped* (the W-lint still reports
//! them; [`RewriteReport::skipped`] counts them). Elision, localization
//! and group shrinking strictly remove work, so they are never gated.
//!
//! One structural veto sits above the price book: an `Unlock` on a
//! **contended** lock — our lock or some other rank's lock on the same
//! `(win, target)` is exclusive — is never relaxed. Deferring the
//! release pushes back the moment contending peers can acquire, so the
//! origin's overlap gain is the peers' serialization loss; the price
//! book is per-rank and cannot see that externality, but the whole-job
//! statement lists can (engine-confirmed on the transactions twin,
//! where relaxing contended unlocks cut blocked steps 111→23 yet
//! *regressed* virtual completion time ~4%).
//!
//! Rewriting runs the classify→apply cycle to a **fixpoint**: an
//! inserted `WaitAll` is a new free deferred-wait landing point that can
//! turn a previously `Required` sync `Relaxable` on the next pass, and
//! each pass that changes anything strictly decreases the number of
//! blocking synchronization points or group widths (relax and elide
//! remove one blocking point each; a localized flush re-classifies
//! `Required` next pass; a shrink strictly narrows a group and is
//! never re-recorded for the dropped pair), so the loop terminates and
//! [`rewrite`] is idempotent by construction —
//! `rewrite(rewrite(p)) == rewrite(p)`, group-shrunk programs
//! included. Skip decisions are deterministic functions of the program
//! and the model, so they are stable across the fixpoint too.
//!
//! [`RewriteMode::PlantUnsound`] exists for the closed-loop validator's
//! exit-inverted self-test: after the sound rewrite it deletes one
//! synchronization statement outright (a fence call, else a barrier,
//! else a blocking unlock), which is exactly the kind of over-eager
//! "optimization" the differential check must catch — via a runtime
//! stall/deadlock, a memory divergence, or a watchdog degradation.

use crate::ir::{Close, IrProgram, Stmt};
use crate::slack::{analyze_slack, SlackClass, SlackFinding, SyncKind};

/// Virtual-time price book for candidate relaxations.
///
/// The calibration anchor is the engine's own `sync_blocked_ns` /
/// `sync_blocked_steps` counters on the BENCH_9 trajectory baseline:
/// `halo_fence` parks the host for 412,548 virtual ns across 1,040
/// blocked sync steps, ≈ 400 ns per blocking synchronization — the
/// default [`CostModel::park_ns_base`]. The remaining constants model
/// the engine's virtual-cost accounting: larger covered transfers keep
/// the sync parked longer (`park_ns_per_byte`), each statement of slack
/// distance can absorb a bounded amount of overlap
/// (`overlap_ns_per_stmt`), a nonblocking request costs
/// allocate/track/complete bookkeeping (`request_ns`), and a fresh
/// mid-program `WaitAll` landing point is itself a synchronization the
/// host must visit (`wait_insert_ns`). A deferred wait that lands on an
/// existing `WaitAll` or at end of program adds no landing-point cost —
/// the park there overlaps work the host no longer has.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Modeled host-park floor of one blocking synchronization, in
    /// virtual ns (BENCH_9 `halo_fence`: ≈ 400 ns per blocked step).
    pub park_ns_base: u64,
    /// Additional park per covered byte the sync completes.
    pub park_ns_per_byte: u64,
    /// Overlap reclaimable per statement of slack distance.
    pub overlap_ns_per_stmt: u64,
    /// Bookkeeping overhead of one nonblocking request.
    pub request_ns: u64,
    /// Overhead of one *inserted* mid-program `WaitAll` landing point.
    pub wait_insert_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

impl CostModel {
    /// The BENCH_9-calibrated default (see the type docs).
    pub fn calibrated() -> Self {
        CostModel {
            park_ns_base: 400,
            park_ns_per_byte: 1,
            overlap_ns_per_stmt: 250,
            request_ns: 120,
            wait_insert_ns: 240,
        }
    }

    /// A free model: every relaxation is profitable (the pre-cost-model
    /// rewriter's behavior; useful for exhaustiveness tests).
    pub fn free() -> Self {
        CostModel {
            park_ns_base: 1,
            park_ns_per_byte: 0,
            overlap_ns_per_stmt: u64::MAX,
            request_ns: 0,
            wait_insert_ns: 0,
        }
    }

    /// Is relaxing this `Relaxable` epoch close worth it? `rank_len` is
    /// the finding's rank program length (the end-of-program wait
    /// point). Benefit is capped both by the park time the blocking
    /// call paid and by the overlap the slack region can absorb; cost
    /// is the request bookkeeping plus, for a fresh mid-program landing
    /// point, the inserted wait.
    pub fn profitable(&self, f: &SlackFinding, rank_len: usize) -> bool {
        let slack_stmts = f.wait_before.unwrap_or(rank_len).saturating_sub(f.step + 1) as u64;
        let park = self.park_ns_base + self.park_ns_per_byte * f.covered_bytes as u64;
        let overlap = self.overlap_ns_per_stmt.saturating_mul(slack_stmts);
        let benefit = park.min(overlap);
        let cost = self.request_ns
            + if f.insert_wait && f.wait_before.is_some() { self.wait_insert_ns } else { 0 };
        benefit > cost
    }
}

/// Whether to apply only provably-safe relaxations or to additionally
/// plant one unsound deletion (for the validator's self-test).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RewriteMode {
    /// Apply exactly the slack pass's `Relaxable`/`Elidable` verdicts.
    Sound,
    /// Sound rewrite **plus** one deliberately unsound deletion on rank
    /// 0 (first fence call, else first barrier, else first blocking
    /// unlock). The differential validator must flag the result.
    PlantUnsound,
}

/// What the rewriter did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RewriteReport {
    /// Blocking epoch closes flipped to their nonblocking form.
    pub relaxed: usize,
    /// Blocking flushes deleted outright.
    pub elided: usize,
    /// Blocking flushes weakened to `flush_local`.
    pub localized: usize,
    /// `WaitAll` statements inserted (deferred-wait landing points).
    pub waits_inserted: usize,
    /// W004 group-shrink pairs applied (start + matching post).
    pub shrunk: usize,
    /// `Relaxable` closes left blocking because the cost model priced
    /// the relaxation as unprofitable (state at the fixpoint, not a
    /// per-pass sum).
    pub skipped: usize,
    /// Classify→apply passes until the fixpoint (≥ 1).
    pub passes: usize,
    /// `PlantUnsound` only: `(rank, original step)` of the deleted
    /// statement.
    pub planted: Option<(usize, usize)>,
}

impl RewriteReport {
    /// Whether any rewrite fired (the validator only scores programs
    /// where it did).
    pub fn changed(&self) -> bool {
        self.relaxed + self.elided + self.localized + self.waits_inserted + self.shrunk > 0
            || self.planted.is_some()
    }
}

/// Apply every safe relaxation to a fixpoint. Returns the rewritten
/// program and a report; `report.changed()` is `false` when the program
/// had no slack (the result then equals the input).
pub fn rewrite(p: &IrProgram) -> (IrProgram, RewriteReport) {
    rewrite_with(p, RewriteMode::Sound)
}

/// [`rewrite`] with an explicit [`RewriteMode`] and the calibrated
/// [`CostModel`].
pub fn rewrite_with(p: &IrProgram, mode: RewriteMode) -> (IrProgram, RewriteReport) {
    rewrite_with_model(p, mode, &CostModel::calibrated())
}

/// [`rewrite`] with an explicit [`RewriteMode`] and [`CostModel`].
pub fn rewrite_with_model(
    p: &IrProgram,
    mode: RewriteMode,
    model: &CostModel,
) -> (IrProgram, RewriteReport) {
    let mut cur = p.clone();
    let mut report = RewriteReport::default();
    // Each changing pass strictly decreases the count of blocking sync
    // points or total group width, so this terminates; the bound is
    // belt and braces.
    let max_passes = 2 + cur.ranks.iter().map(Vec::len).sum::<usize>();
    loop {
        report.passes += 1;
        let (next, changed) = apply_once(&cur, model, &mut report);
        cur = next;
        if !changed || report.passes >= max_passes {
            break;
        }
    }
    if mode == RewriteMode::PlantUnsound {
        report.planted = plant_unsound(&mut cur);
    }
    (cur, report)
}

/// One classify→apply pass. Returns the rewritten program and whether
/// anything fired.
/// The structural contention veto (see the module docs): is the close
/// at `(rank, step)` an `Unlock` whose lock is contended? Contended
/// means some *other* rank also locks the same `(win, target)` — or
/// `lock_all`s the window — and at least one of the two locks is
/// exclusive: exactly the pairs where one side's acquire waits on the
/// other side's release, so deferring our release serializes them.
/// Concurrent shared locks never wait on each other, so a shared/shared
/// pair stays relaxable.
fn unlock_contended(p: &IrProgram, rank: usize, step: usize) -> bool {
    let Stmt::Unlock { win, target, .. } = p.ranks[rank][step] else {
        return false;
    };
    // Our lock mode: the nearest preceding lock of that (win, target).
    let ours_exclusive = p.ranks[rank][..step]
        .iter()
        .rev()
        .find_map(|s| match *s {
            Stmt::Lock { win: w, target: t, exclusive, .. } if w == win && t == target => {
                Some(exclusive)
            }
            _ => None,
        })
        .unwrap_or(false);
    p.ranks.iter().enumerate().any(|(r, stmts)| {
        r != rank
            && stmts.iter().any(|s| match *s {
                Stmt::Lock { win: w, target: t, exclusive, .. } => {
                    w == win && t == target && (exclusive || ours_exclusive)
                }
                Stmt::LockAll { win: w } => w == win && ours_exclusive,
                _ => false,
            })
    })
}

fn apply_once(p: &IrProgram, model: &CostModel, report: &mut RewriteReport) -> (IrProgram, bool) {
    let slack = analyze_slack(p);
    let mut out = p.clone();
    let mut changed = false;
    // W004 group shrinks first: statement-count-stable (only group
    // contents change), so every finding's step index stays valid, and
    // the per-rank rebuild below reads the shrunk statements.
    for s in &slack.shrinks {
        if let Stmt::Start { group, .. } = &mut out.ranks[s.origin][s.start_step] {
            if let Some(pos) = group.iter().position(|&t| t == s.target) {
                group.remove(pos);
                changed = true;
                report.shrunk += 1;
            }
        }
        if let Stmt::Post { group, .. } = &mut out.ranks[s.target][s.post_step] {
            if let Some(pos) = group.iter().position(|&o| o == s.origin) {
                group.remove(pos);
            }
        }
    }
    let mut pass_skipped = 0usize;
    for rank in 0..p.n_ranks {
        let mut relax: Vec<usize> = Vec::new();
        let mut elide: Vec<usize> = Vec::new();
        let mut localize: Vec<usize> = Vec::new();
        let mut insert_before: Vec<usize> = Vec::new();
        let mut trailing_wait = false;
        for f in slack.findings.iter().filter(|f| f.rank == rank) {
            match (f.class, f.kind) {
                (SlackClass::Relaxable, SyncKind::Flush) => localize.push(f.step),
                (SlackClass::Relaxable, _) => {
                    if unlock_contended(p, rank, f.step)
                        || !model.profitable(f, p.ranks[rank].len())
                    {
                        pass_skipped += 1;
                        continue;
                    }
                    relax.push(f.step);
                    match f.wait_before {
                        Some(d) if f.insert_wait => insert_before.push(d),
                        Some(_) => {} // existing WaitAll consumes it
                        None => trailing_wait = true,
                    }
                }
                (SlackClass::Elidable, SyncKind::Flush) => elide.push(f.step),
                _ => {}
            }
        }
        insert_before.sort_unstable();
        insert_before.dedup();
        if relax.is_empty() && elide.is_empty() && localize.is_empty() {
            continue;
        }
        changed = true;
        report.relaxed += relax.len();
        report.elided += elide.len();
        report.localized += localize.len();
        report.waits_inserted += insert_before.len() + usize::from(trailing_wait);
        let src = std::mem::take(&mut out.ranks[rank]);
        let mut stmts = Vec::with_capacity(src.len() + insert_before.len() + 1);
        for (i, stmt) in src.iter().enumerate() {
            if insert_before.binary_search(&i).is_ok() {
                stmts.push(Stmt::WaitAll);
            }
            if elide.contains(&i) {
                continue;
            }
            let mut s = stmt.clone();
            if relax.contains(&i) {
                match &mut s {
                    Stmt::Fence { close, .. }
                    | Stmt::Complete { close, .. }
                    | Stmt::WaitEpoch { close, .. }
                    | Stmt::Unlock { close, .. }
                    | Stmt::UnlockAll { close, .. } => *close = Close::Nonblocking,
                    _ => unreachable!("relax set only holds epoch closes"),
                }
            }
            if localize.contains(&i) {
                if let Stmt::Flush { local_only, .. } = &mut s {
                    *local_only = true;
                }
            }
            stmts.push(s);
        }
        if trailing_wait {
            stmts.push(Stmt::WaitAll);
        }
        out.ranks[rank] = stmts;
    }
    report.skipped = pass_skipped;
    (out, changed)
}

/// Delete one synchronization statement of rank 0: the first fence call
/// if any, else the first barrier, else the first blocking unlock.
/// Returns the `(rank, step)` it removed, or `None` when rank 0 has no
/// such statement (the program is left unchanged and the validator
/// skips it).
fn plant_unsound(p: &mut IrProgram) -> Option<(usize, usize)> {
    let stmts = p.ranks.get_mut(0)?;
    let victim = stmts
        .iter()
        .position(|s| matches!(s, Stmt::Fence { .. }))
        .or_else(|| stmts.iter().position(|s| matches!(s, Stmt::Barrier)))
        .or_else(|| {
            stmts.iter().position(|s| {
                matches!(s, Stmt::Unlock { close, .. } if close.is_blocking())
            })
        })?;
    stmts.remove(victim);
    Some((0, victim))
}
