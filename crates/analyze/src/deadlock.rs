//! Whole-job deadlock and progress analysis (E013–E018).
//!
//! Two passes over the multi-window IR:
//!
//! 1. **Fixpoint interpreter.** A symbolic abstract interpretation of the
//!    whole job: every rank holds a program counter, and a round-based
//!    monotone fixpoint advances each rank past a statement as soon as the
//!    statement's *wait condition* is satisfiable given what every other
//!    rank has already initiated. The abstract domain is the ω-triple
//!    view of the protocol — which fence phases each rank has announced
//!    (`FenceDone` availability), which exposure instances are posted
//!    (grant availability, the `g` counter plane), and which access
//!    epochs have closed (`GatsDone` availability, the `e`/`a` planes) —
//!    with statement-initiation as the single monotone fact: a blocked
//!    rank still *initiates* its current statement (a fence announces the
//!    previous phase at call time; a closed GATS epoch emits `GatsDone`
//!    per target as soon as that target's grant lands). Ranks still stuck
//!    at the fixpoint are provably non-terminating; a wait-for graph over
//!    them yields E013 (cycle, with a rank-annotated witness) or a
//!    root-cause code (E015/E016/E017, plus E011 for a bare barrier
//!    mismatch) when the missing dependency is a peer that terminates
//!    without ever supplying it. Ranks stuck only because another stuck
//!    rank is upstream (cascades) are suppressed.
//!
//!    The fixpoint additionally carries an **abstract value domain** for
//!    value-dependent guards ([`Stmt::SpinUntil`]): per byte of the spun
//!    8-byte slot, the set of values the slot can ever hold is
//!    over-approximated as the window's zero initialization, plus the
//!    matching byte of every *reachable* known-constant `Replace` write
//!    ([`Stmt::AccVal`]), plus ⊤ for any overlapping unknown-operand
//!    write (put, accumulate, fetching atomics that modify). A spin's
//!    wait condition is satisfiable once every non-zero byte of the
//!    expected value is covered by an initiated supplier; a byte no
//!    rank's program can *ever* supply (the spinner's own post-spin
//!    writes are unreachable — the spin blocks the host first) makes
//!    the spin provably unsatisfiable — E018, with the uncoverable byte
//!    as witness. Because the domain only ever grows (values union, no
//!    kills), satisfiability is monotone in the program-counter vector
//!    and over-approximated: a clean verdict may miss a value-dependent
//!    stall, but every E018 is a real one.
//!
//! 2. **Lock-order pass (E014).** The fixpoint deliberately treats the
//!    passive-target plane as eventually-completing (the lock manager is
//!    fair, so acquisition order — not lock usage — is the only deadlock
//!    source there). A separate scan records, per rank, every point where
//!    the rank *blocks on the completion of one lock epoch while holding
//!    another* (a blocking unlock or covering blocking full flush, or a
//!    `waitall` consuming the epoch's nonblocking close). Each such point
//!    contributes a held→wanted edge; a cycle whose consecutive edges come
//!    from different ranks and conflict in lock mode (requester or holder
//!    exclusive) is a classic ABBA inversion.
//!
//! The lock-order pass models **epoch-activation deferral at call-site
//! granularity**: lock acquisition is lazily deferred to the first
//! forcing call (§VII.B), so a held lock contributes a held→wanted edge
//! only once it is *established* — a full flush (blocking or
//! nonblocking) covering it has forced the acquisition. An unestablished
//! lock epoch holds nothing a peer can block on, and `flush_local` is
//! not a forcing call in the modeled MPI-spec semantics (it completes
//! locally only), so it neither establishes a hold nor discharges a
//! held→wanted edge. (The simulator's engine conservatively forces
//! acquisition on *every* flush, `flush_local` included — a legal
//! strengthening, mirroring MVAPICH; the analyzer models the weaker
//! spec semantics so its verdicts hold for any compliant runtime.) The
//! fixpoint pass models the remaining synchronization effects at the
//! call site, which is exact for every program the conformance generator
//! produces and for the deadlock corpus; in general it over-approximates
//! concurrency, which for deadlock detection means a flagged program may
//! need a particular activation interleaving to stall — never that a
//! clean program can stall.

use std::collections::BTreeMap;

use mpisim_core::ReduceOp;

use crate::diag::{Code, Diagnostic};
use crate::ir::{IrProgram, Stmt};

/// One statement that can deposit bytes into a window — the abstract
/// value domain's supplier index. `val` is `Some` for a known-constant
/// `Replace` write (the slot's post-state is exactly that constant) and
/// `None` for ⊤ (unknown operand or non-`Replace` fold: any byte value
/// is conservatively possible).
struct Supply {
    rank: usize,
    step: usize,
    win: usize,
    target: usize,
    /// Covered byte range `[lo, hi)` of the target window.
    lo: usize,
    hi: usize,
    val: Option<u64>,
}

/// One GATS access-epoch instance of a rank on one window.
struct StartInfo {
    group: Vec<usize>,
    /// Per-target occurrence index: this is the rank's `occ[t]`-th start
    /// (0-based) whose group contains `t`.
    occ: BTreeMap<usize, usize>,
    /// Statement index of the matching `complete`, if the program has
    /// one.
    complete: Option<usize>,
}

/// One exposure-epoch instance of a rank on one window.
struct PostInfo {
    group: Vec<usize>,
    stmt: usize,
    /// Per-origin occurrence index among this rank's posts containing
    /// that origin.
    occ: BTreeMap<usize, usize>,
}

/// Syntactic shape of one rank's program, pre-resolved for condition
/// evaluation.
#[derive(Default)]
struct RankShape {
    /// Per window: fence statement indices, in call order.
    fences: BTreeMap<usize, Vec<usize>>,
    /// Per window: GATS access-epoch instances, in open order.
    starts: BTreeMap<usize, Vec<StartInfo>>,
    /// Per window: exposure-epoch instances, in open order.
    posts: BTreeMap<usize, Vec<PostInfo>>,
    /// Barrier statement indices, in call order.
    barriers: Vec<usize>,
    len: usize,
}

/// A wait condition a statement (or a pending nonblocking request) must
/// satisfy before the rank can move past it.
#[derive(Clone)]
enum Cond {
    /// Always satisfiable (including calls the fixpoint treats as
    /// eventually-completing: the whole passive-target plane).
    None,
    /// The rank's `idx`-th fence call on `win`: completes once every job
    /// rank has initiated *its* `idx`-th fence call on `win` (each call
    /// announces `FenceDone` for the previous phase at call time; call
    /// #0 never blocks).
    Fence { win: usize, idx: usize },
    /// Close of the rank's `start`-th GATS access epoch on `win`:
    /// completes once every target's matching exposure post is initiated
    /// (the grant plane).
    Grants { win: usize, start: usize },
    /// Close of the rank's `post`-th exposure epoch on `win`: completes
    /// once every origin's matching access epoch has initiated its close
    /// (per-target `GatsDone` needs only the origin's close plus this
    /// very post's grant).
    Dones { win: usize, post: usize },
    /// The rank's `idx`-th barrier: completes once every rank has
    /// initiated its `idx`-th barrier.
    Barrier { idx: usize },
    /// `waitall` over the outstanding nonblocking requests collected so
    /// far, each tagged with its originating statement and name.
    Many(Vec<(usize, &'static str, Cond)>),
    /// A value-dependent spin at statement `step` of the rank, resolved
    /// through its local binding to the 8-byte slot at `disp` of
    /// `target`'s window `win`: completes once every non-zero byte of
    /// `expect` is covered by an initiated supplier write (the abstract
    /// value domain).
    Spin { step: usize, win: usize, target: usize, disp: usize, expect: u64 },
}

/// Why a condition is unmet: a peer that can still move (`Stuck`) or a
/// peer whose program provably never supplies the dependency (`Never`).
enum Blocker {
    Stuck(usize),
    Never { rank: usize, why: String },
}

fn build_shape(rank: usize, p: &IrProgram) -> RankShape {
    let mut sh = RankShape { len: p.ranks[rank].len(), ..Default::default() };
    // Per-window open-instance trackers.
    let mut open_start: BTreeMap<usize, usize> = BTreeMap::new();
    let mut starts_toward: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut posts_toward: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (step, stmt) in p.ranks[rank].iter().enumerate() {
        match stmt {
            Stmt::Fence { win, .. } => sh.fences.entry(*win).or_default().push(step),
            Stmt::Start { win, group } => {
                let mut occ = BTreeMap::new();
                for &t in group {
                    let c = starts_toward.entry((*win, t)).or_insert(0);
                    occ.insert(t, *c);
                    *c += 1;
                }
                let list = sh.starts.entry(*win).or_default();
                open_start.insert(*win, list.len());
                list.push(StartInfo { group: group.clone(), occ, complete: None });
            }
            Stmt::Complete { win, .. } => {
                if let Some(i) = open_start.remove(win) {
                    sh.starts.get_mut(win).unwrap()[i].complete = Some(step);
                }
            }
            Stmt::Post { win, group } => {
                let mut occ = BTreeMap::new();
                for &o in group {
                    let c = posts_toward.entry((*win, o)).or_insert(0);
                    occ.insert(o, *c);
                    *c += 1;
                }
                sh.posts.entry(*win).or_default().push(PostInfo {
                    group: group.clone(),
                    stmt: step,
                    occ,
                });
            }
            Stmt::Barrier => sh.barriers.push(step),
            _ => {}
        }
    }
    sh
}

/// Per-statement wait conditions for one rank, mirroring the engine's
/// completion rules (see the module docs for the abstract domain).
fn build_conds(rank: usize, p: &IrProgram, sh: &RankShape) -> Vec<Cond> {
    let mut conds = Vec::with_capacity(sh.len);
    let mut fence_idx: BTreeMap<usize, usize> = BTreeMap::new();
    let mut start_idx: BTreeMap<usize, usize> = BTreeMap::new();
    let mut open_start: BTreeMap<usize, usize> = BTreeMap::new();
    let mut post_idx: BTreeMap<usize, usize> = BTreeMap::new();
    let mut open_post: BTreeMap<usize, usize> = BTreeMap::new();
    let mut barrier_idx = 0usize;
    let mut pending: Vec<(usize, &'static str, Cond)> = Vec::new();
    // Forward local-binding environment for value-dependent guards:
    // local → the (win, target, disp) slot its defining `ReadValue`
    // fetches (rebinding shadows).
    let mut locals: BTreeMap<usize, (usize, usize, usize)> = BTreeMap::new();
    for (step, stmt) in p.ranks[rank].iter().enumerate() {
        let cond = match stmt {
            Stmt::Fence { win, close } => {
                let idx = *fence_idx.entry(*win).or_insert(0);
                *fence_idx.get_mut(win).unwrap() += 1;
                let c = Cond::Fence { win: *win, idx };
                if close.is_blocking() {
                    c
                } else {
                    pending.push((step, "ifence", c));
                    Cond::None
                }
            }
            Stmt::Start { win, .. } => {
                let i = *start_idx.entry(*win).or_insert(0);
                *start_idx.get_mut(win).unwrap() += 1;
                open_start.insert(*win, i);
                Cond::None
            }
            Stmt::Complete { win, close } => match open_start.remove(win) {
                Some(i) => {
                    let c = Cond::Grants { win: *win, start: i };
                    if close.is_blocking() {
                        c
                    } else {
                        pending.push((step, "icomplete", c));
                        Cond::None
                    }
                }
                // Close without an open epoch: the per-rank walker already
                // reported E004; the runtime errors out rather than
                // blocking.
                None => Cond::None,
            },
            Stmt::Post { win, .. } => {
                let m = *post_idx.entry(*win).or_insert(0);
                *post_idx.get_mut(win).unwrap() += 1;
                open_post.insert(*win, m);
                Cond::None
            }
            Stmt::WaitEpoch { win, close } => match open_post.remove(win) {
                Some(m) => {
                    let c = Cond::Dones { win: *win, post: m };
                    if close.is_blocking() {
                        c
                    } else {
                        pending.push((step, "iwait", c));
                        Cond::None
                    }
                }
                None => Cond::None,
            },
            Stmt::Barrier => {
                let idx = barrier_idx;
                barrier_idx += 1;
                Cond::Barrier { idx }
            }
            Stmt::WaitAll => Cond::Many(std::mem::take(&mut pending)),
            Stmt::ReadValue { win, target, disp, local, .. } => {
                locals.insert(*local, (*win, *target, *disp));
                Cond::None
            }
            Stmt::SpinUntil { local, expect } => match locals.get(local) {
                Some(&(win, target, disp)) => {
                    Cond::Spin { step, win, target, disp, expect: *expect }
                }
                // Spin on a local no dominating ReadValue binds: a no-op
                // (the per-rank walker already models it as such).
                None => Cond::None,
            },
            // The passive-target plane (lock/unlock/flush) is treated as
            // eventually-completing here; acquisition-order deadlocks are
            // the lock-order pass's job.
            Stmt::Lock { .. }
            | Stmt::Unlock { .. }
            | Stmt::LockAll { .. }
            | Stmt::UnlockAll { .. }
            | Stmt::Flush { .. }
            | Stmt::Put { .. }
            | Stmt::Get { .. }
            | Stmt::Acc { .. }
            | Stmt::AccVal { .. } => Cond::None,
        };
        conds.push(cond);
    }
    conds
}

struct Interp<'a> {
    p: &'a IrProgram,
    shapes: Vec<RankShape>,
    conds: Vec<Vec<Cond>>,
    /// Every statement, job-wide, that can deposit bytes into a window
    /// (the abstract value domain's supplier index for `Cond::Spin`).
    suppliers: Vec<Supply>,
}

impl Interp<'_> {
    /// Has rank `r` initiated statement `stmt`? A rank initiates its
    /// current (possibly blocked) statement: call-site effects — fence
    /// announcements, posts, epoch closes — happen before the wait.
    fn initiated(&self, pcs: &[usize], r: usize, stmt: usize) -> bool {
        pcs[r] >= stmt
    }

    /// `t`'s exposure post matching origin `o`'s start instance `si` on
    /// `win`: the `occ`-th post of `t` on `win` whose group contains `o`.
    fn matching_post(&self, t: usize, win: usize, o: usize, occ: usize) -> Option<&PostInfo> {
        self.shapes[t]
            .posts
            .get(&win)?
            .iter()
            .filter(|pi| pi.group.contains(&o))
            .nth(occ)
    }

    /// `o`'s access epoch matching target `t`'s post with per-origin
    /// occurrence `occ` on `win`.
    fn matching_start(&self, o: usize, win: usize, t: usize, occ: usize) -> Option<&StartInfo> {
        self.shapes[o]
            .starts
            .get(&win)?
            .iter()
            .filter(|si| si.group.contains(&t))
            .nth(occ)
    }

    /// Is `cond` (of rank `r`) satisfied under `pcs`? When not, pushes
    /// the reasons into `blockers` (when provided).
    fn sat(
        &self,
        r: usize,
        cond: &Cond,
        pcs: &[usize],
        mut blockers: Option<&mut Vec<Blocker>>,
    ) -> bool {
        let n = self.p.n_ranks;
        let mut ok = true;
        let mut blame = |b: Blocker, ok: &mut bool| {
            *ok = false;
            if let Some(bl) = blockers.as_deref_mut() {
                bl.push(b);
            }
        };
        match cond {
            Cond::None => {}
            Cond::Fence { win, idx } => {
                if *idx > 0 {
                    for q in 0..n {
                        match self.shapes[q].fences.get(win).and_then(|f| f.get(*idx)) {
                            Some(&s) if self.initiated(pcs, q, s) => {}
                            Some(_) => blame(Blocker::Stuck(q), &mut ok),
                            None => blame(
                                Blocker::Never {
                                    rank: q,
                                    why: format!(
                                        "rank {q} makes only {} fence call(s) on window \
                                         {win}, so fence phase {} can never complete",
                                        self.shapes[q]
                                            .fences
                                            .get(win)
                                            .map(|f| f.len())
                                            .unwrap_or(0),
                                        idx - 1
                                    ),
                                },
                                &mut ok,
                            ),
                        }
                    }
                }
            }
            Cond::Grants { win, start } => {
                let si = &self.shapes[r].starts[win][*start];
                for &t in &si.group {
                    if t >= n {
                        continue; // invalid target: E002 already reported
                    }
                    match self.matching_post(t, *win, r, si.occ[&t]) {
                        Some(pi) if self.initiated(pcs, t, pi.stmt) => {}
                        Some(_) => blame(Blocker::Stuck(t), &mut ok),
                        None => blame(
                            Blocker::Never {
                                rank: t,
                                why: format!(
                                    "rank {t} never issues the matching exposure post on \
                                     window {win} (needs its post #{} containing rank {r})",
                                    si.occ[&t]
                                ),
                            },
                            &mut ok,
                        ),
                    }
                }
            }
            Cond::Dones { win, post } => {
                let pi = &self.shapes[r].posts[win][*post];
                for &o in &pi.group {
                    if o >= n {
                        continue;
                    }
                    match self.matching_start(o, *win, r, pi.occ[&o]) {
                        Some(si) => match si.complete {
                            Some(c) if self.initiated(pcs, o, c) => {}
                            Some(_) => blame(Blocker::Stuck(o), &mut ok),
                            None => blame(
                                Blocker::Never {
                                    rank: o,
                                    why: format!(
                                        "rank {o}'s matching access epoch on window {win} \
                                         is never completed, so its done packet never \
                                         arrives"
                                    ),
                                },
                                &mut ok,
                            ),
                        },
                        None => blame(
                            Blocker::Never {
                                rank: o,
                                why: format!(
                                    "rank {o} never starts a matching access epoch on \
                                     window {win} (needs its start #{} containing rank \
                                     {r})",
                                    pi.occ[&o]
                                ),
                            },
                            &mut ok,
                        ),
                    }
                }
            }
            Cond::Barrier { idx } => {
                for q in 0..n {
                    match self.shapes[q].barriers.get(*idx) {
                        Some(&s) if self.initiated(pcs, q, s) => {}
                        Some(_) => blame(Blocker::Stuck(q), &mut ok),
                        None => blame(
                            Blocker::Never {
                                rank: q,
                                why: format!(
                                    "rank {q} calls barrier only {} time(s)",
                                    self.shapes[q].barriers.len()
                                ),
                            },
                            &mut ok,
                        ),
                    }
                }
            }
            Cond::Spin { step, win, target, disp, expect } => {
                // Per byte of the expected value: the window's zero
                // initialization covers zero bytes; every other byte
                // needs a reachable supplier — a ⊤ write overlapping it,
                // or a known-constant `Replace` whose matching byte
                // equals the wanted one. The spinner's own post-spin
                // statements are unreachable (the spin blocks the host
                // before them). An initiated supplier satisfies the
                // byte; a supplier the writer has not reached yet is a
                // `Stuck` edge toward it; no supplier anywhere in the
                // job is `Never` — E018.
                for j in 0..8 {
                    let want = (expect >> (8 * j)) as u8;
                    if want == 0 {
                        continue;
                    }
                    let abs = disp + j;
                    let mut covered = false;
                    let mut pending: Vec<usize> = Vec::new();
                    for s in &self.suppliers {
                        if s.win != *win || s.target != *target || abs < s.lo || abs >= s.hi {
                            continue;
                        }
                        if s.rank == r && s.step > *step {
                            continue;
                        }
                        if let Some(v) = s.val {
                            if (v >> (8 * j)) as u8 != want {
                                continue;
                            }
                        }
                        if self.initiated(pcs, s.rank, s.step) {
                            covered = true;
                            break;
                        }
                        if !pending.contains(&s.rank) {
                            pending.push(s.rank);
                        }
                    }
                    if covered {
                        continue;
                    }
                    if pending.is_empty() {
                        blame(
                            Blocker::Never {
                                rank: r,
                                why: format!(
                                    "spin waits for value {expect:#x} in the 8-byte slot \
                                     at disp {disp} of rank {target}'s window {win}, but \
                                     byte {j} (wants {want:#04x}) is outside the window's \
                                     zero initialization and every constant any rank's \
                                     reachable writes can deposit, and no unknown-operand \
                                     write covers it — the spin can never be satisfied"
                                ),
                            },
                            &mut ok,
                        );
                    } else {
                        for q in pending {
                            blame(Blocker::Stuck(q), &mut ok);
                        }
                    }
                }
            }
            Cond::Many(reqs) => {
                for (step, what, c) in reqs {
                    let mut sub = Vec::new();
                    if !self.sat(r, c, pcs, Some(&mut sub)) {
                        ok = false;
                        if let Some(bl) = blockers.as_deref_mut() {
                            for b in sub {
                                bl.push(match b {
                                    Blocker::Never { rank, why } => Blocker::Never {
                                        rank,
                                        why: format!(
                                            "{what} request from stmt {step} can never \
                                             complete: {why}"
                                        ),
                                    },
                                    s => s,
                                });
                            }
                        }
                    }
                }
            }
        }
        ok
    }
}

/// The fixpoint interpreter: E013 cycles plus E015/E016/E017/E011 roots.
fn fixpoint_pass(p: &IrProgram) -> Vec<Diagnostic> {
    let n = p.n_ranks;
    let shapes: Vec<RankShape> = (0..n).map(|r| build_shape(r, p)).collect();
    let conds: Vec<Vec<Cond>> = (0..n).map(|r| build_conds(r, p, &shapes[r])).collect();
    // Supplier index for the abstract value domain: every statement that
    // can deposit bytes into a window, with its value knowledge. Only
    // `AccVal`/`Replace` yields a known post-state; every other
    // modifying write is ⊤ over its byte range (conservatively able to
    // produce any value, which suppresses E018 — the soundness
    // direction).
    let mut suppliers: Vec<Supply> = Vec::new();
    for (rank, stmts) in p.ranks.iter().enumerate() {
        for (step, stmt) in stmts.iter().enumerate() {
            match stmt {
                Stmt::Put { win, target, disp, len } => suppliers.push(Supply {
                    rank,
                    step,
                    win: *win,
                    target: *target,
                    lo: *disp,
                    hi: disp + len,
                    val: None,
                }),
                Stmt::Acc { win, target, disp, len, op } if *op != ReduceOp::NoOp => {
                    suppliers.push(Supply {
                        rank,
                        step,
                        win: *win,
                        target: *target,
                        lo: *disp,
                        hi: disp + len,
                        val: None,
                    })
                }
                Stmt::AccVal { win, target, disp, op, val } if *op != ReduceOp::NoOp => {
                    suppliers.push(Supply {
                        rank,
                        step,
                        win: *win,
                        target: *target,
                        lo: *disp,
                        hi: disp + 8,
                        val: (*op == ReduceOp::Replace).then_some(*val),
                    })
                }
                Stmt::ReadValue { win, target, disp, kind, .. }
                    if kind.write_op().is_some() =>
                {
                    suppliers.push(Supply {
                        rank,
                        step,
                        win: *win,
                        target: *target,
                        lo: *disp,
                        hi: disp + 8,
                        val: None,
                    })
                }
                _ => {}
            }
        }
    }
    let interp = Interp { p, shapes, conds, suppliers };

    let mut pcs = vec![0usize; n];
    loop {
        let mut progressed = false;
        for r in 0..n {
            while pcs[r] < interp.shapes[r].len
                && interp.sat(r, &interp.conds[r][pcs[r]], &pcs, None)
            {
                pcs[r] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    let stuck: Vec<usize> = (0..n).filter(|&r| pcs[r] < interp.shapes[r].len).collect();
    if stuck.is_empty() {
        return Vec::new();
    }

    // Wait-for edges between stuck ranks + terminal (never-satisfiable)
    // blame per stuck rank.
    let mut edges: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut nevers: BTreeMap<usize, Vec<(usize, String)>> = BTreeMap::new();
    for &r in &stuck {
        let mut blockers = Vec::new();
        interp.sat(r, &interp.conds[r][pcs[r]], &pcs, Some(&mut blockers));
        for b in blockers {
            match b {
                Blocker::Stuck(q) => {
                    let e = edges.entry(r).or_default();
                    if !e.contains(&q) {
                        e.push(q);
                    }
                }
                Blocker::Never { rank, why } => {
                    nevers.entry(r).or_default().push((rank, why));
                }
            }
        }
    }

    let mut diags = Vec::new();

    // E013: cycles in the wait-for graph. Walk from each stuck rank,
    // always following the smallest-ranked outgoing edge, and report each
    // discovered cycle once, anchored at its smallest member.
    let mut reported_cycles: Vec<Vec<usize>> = Vec::new();
    for &r in &stuck {
        let mut path = vec![r];
        let mut cur = r;
        while let Some(next) = edges.get(&cur).and_then(|e| e.iter().min().copied()) {
            if let Some(pos) = path.iter().position(|&x| x == next) {
                let mut cycle: Vec<usize> = path[pos..].to_vec();
                let anchor_pos =
                    cycle.iter().enumerate().min_by_key(|&(_, &x)| x).map(|(i, _)| i).unwrap();
                cycle.rotate_left(anchor_pos);
                if !reported_cycles.contains(&cycle) {
                    let witness: Vec<String> =
                        cycle.iter().chain(cycle.first()).map(|q| format!("rank {q}")).collect();
                    let anchor = cycle[0];
                    let at = pcs[anchor];
                    diags.push(Diagnostic {
                        code: Code::E013,
                        rank: anchor,
                        step: Some(at),
                        detail: format!(
                            "cyclic cross-rank wait: {} (each rank's blocking \
                             synchronization waits on the next; no rank can ever advance)",
                            witness.join(" -> ")
                        ),
                    });
                    reported_cycles.push(cycle);
                }
                break;
            }
            path.push(next);
            cur = next;
        }
    }

    // Roots: stuck ranks with a terminal (never-satisfiable) dependency.
    // Ranks stuck only behind other stuck ranks are cascades — the report
    // on the cause suffices.
    for &r in &stuck {
        let Some(reasons) = nevers.get(&r) else { continue };
        let at = pcs[r];
        let code = match &p.ranks[r][at] {
            Stmt::Fence { .. } => Code::E016,
            Stmt::Complete { .. } | Stmt::WaitEpoch { .. } => Code::E015,
            Stmt::WaitAll => Code::E017,
            Stmt::Barrier => Code::E011,
            Stmt::SpinUntil { .. } => Code::E018,
            _ => Code::E013,
        };
        let why: Vec<&str> = reasons.iter().map(|(_, w)| w.as_str()).collect();
        diags.push(Diagnostic {
            code,
            rank: r,
            step: Some(at),
            detail: format!("rank {r} blocks forever at stmt {at}: {}", why.join("; ")),
        });
    }

    diags
}

/// One held→wanted lock dependency of one rank.
struct LockEdge {
    rank: usize,
    held: (usize, usize),
    wanted: (usize, usize),
    held_excl: bool,
    want_excl: bool,
    held_stmt: usize,
    block_stmt: usize,
}

/// The lock-order pass: E014 ABBA inversions in the passive-target plane.
fn lock_order_pass(p: &IrProgram) -> Vec<Diagnostic> {
    let mut edges: Vec<LockEdge> = Vec::new();
    for (rank, stmts) in p.ranks.iter().enumerate() {
        // (win, target) → (exclusive, lock stmt, established). A hold
        // only contributes a held→wanted edge once it is *established*:
        // lock acquisition is lazily deferred to the first forcing call
        // (§VII.B), so a lock epoch that has seen no full flush since its
        // `lock` holds nothing yet — the grant request has not even been
        // sent, and a peer wanting the same lock cannot be blocked by it.
        // `flush_local` completes locally only and is *not* a forcing
        // call in the modeled (MPI-spec) semantics, so it neither
        // establishes a hold nor discharges one.
        let mut held: BTreeMap<(usize, usize), (bool, usize, bool)> = BTreeMap::new();
        // Pending nonblocking unlocks whose completion a later waitall
        // blocks on: (win, target, exclusive, unlock stmt).
        let mut pending_iunlock: Vec<(usize, usize, bool, usize)> = Vec::new();
        let block_on = |held: &BTreeMap<(usize, usize), (bool, usize, bool)>,
                            wanted: (usize, usize),
                            want_excl: bool,
                            block_stmt: usize,
                            edges: &mut Vec<LockEdge>| {
            for (&h, &(held_excl, held_stmt, established)) in held {
                if h == wanted || !established {
                    continue;
                }
                edges.push(LockEdge {
                    rank,
                    held: h,
                    wanted,
                    held_excl,
                    want_excl,
                    held_stmt,
                    block_stmt,
                });
            }
        };
        for (step, stmt) in stmts.iter().enumerate() {
            match stmt {
                Stmt::Lock { win, target, exclusive, .. } => {
                    held.insert((*win, *target), (*exclusive, step, false));
                }
                Stmt::Unlock { win, target, close } => {
                    if let Some((excl, ..)) = held.remove(&(*win, *target)) {
                        if close.is_blocking() {
                            // Blocks here until this lock epoch completes
                            // (grant + release) while still holding every
                            // other established lock.
                            block_on(&held, (*win, *target), excl, step, &mut edges);
                        } else {
                            pending_iunlock.push((*win, *target, excl, step));
                        }
                    }
                }
                Stmt::Flush { win, target, local_only, close } => {
                    if *local_only {
                        // flush_local: local completion only — forces no
                        // acquisition and discharges no held→wanted edge.
                        continue;
                    }
                    // A full flush (blocking or not) forces acquisition of
                    // the covered lazily-held locks: they are established
                    // from here on.
                    let covered: Vec<((usize, usize), bool)> = held
                        .iter()
                        .filter(|((w, t), _)| *w == *win && target.is_none_or(|tt| tt == *t))
                        .map(|(&k, &(excl, _, _))| (k, excl))
                        .collect();
                    for (k, _) in &covered {
                        if let Some(e) = held.get_mut(k) {
                            e.2 = true;
                        }
                    }
                    if close.is_blocking() {
                        // And a *blocking* full flush additionally waits
                        // for the covered epochs' issued operations, which
                        // need the covered locks granted.
                        for (k, excl) in covered {
                            block_on(&held, k, excl, step, &mut edges);
                        }
                    }
                }
                Stmt::WaitAll => {
                    for &(win, target, excl, _) in &pending_iunlock {
                        block_on(&held, (win, target), excl, step, &mut edges);
                    }
                    pending_iunlock.clear();
                }
                _ => {}
            }
        }
    }

    // Cycle search over (win, target) keys. Consecutive edges must come
    // from different ranks (a rank never blocks on its own hold) and must
    // conflict in lock mode (requester or holder exclusive); shared-hold
    // against shared-want never blocks.
    let mut adj: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    for (i, e) in edges.iter().enumerate() {
        adj.entry(e.held).or_default().push(i);
    }
    let conflict = |want: &LockEdge, holder: &LockEdge| {
        want.rank != holder.rank && (want.want_excl || holder.held_excl)
    };
    let mut diags = Vec::new();
    let mut reported: Vec<Vec<(usize, usize)>> = Vec::new();
    // DFS over edge paths (consecutive conflicts verified at extension
    // time), bounded by the tiny program sizes. A cycle closes when the
    // last edge's wanted key is a held key already on the path.
    fn dfs(
        edges: &[LockEdge],
        adj: &BTreeMap<(usize, usize), Vec<usize>>,
        conflict: &dyn Fn(&LockEdge, &LockEdge) -> bool,
        path: &mut Vec<usize>,
        diags: &mut Vec<Diagnostic>,
        reported: &mut Vec<Vec<(usize, usize)>>,
    ) {
        let last = *path.last().unwrap();
        if let Some(pos) = path.iter().position(|&i| edges[i].held == edges[last].wanted) {
            // The closing hold must conflict with the final want as well.
            if conflict(&edges[last], &edges[path[pos]]) {
                let cycle: Vec<usize> = path[pos..].to_vec();
                let mut sig: Vec<(usize, usize)> = cycle.iter().map(|&i| edges[i].held).collect();
                sig.sort_unstable();
                if !reported.contains(&sig) {
                    reported.push(sig);
                    let anchor = cycle.iter().min_by_key(|&&i| edges[i].rank).copied().unwrap();
                    let e = &edges[anchor];
                    let witness: Vec<String> = cycle
                        .iter()
                        .map(|&i| {
                            let e = &edges[i];
                            format!(
                                "rank {} holds lock(win {}, rank {}) from stmt {} and \
                                 blocks on lock(win {}, rank {}) at stmt {}",
                                e.rank,
                                e.held.0,
                                e.held.1,
                                e.held_stmt,
                                e.wanted.0,
                                e.wanted.1,
                                e.block_stmt
                            )
                        })
                        .collect();
                    diags.push(Diagnostic {
                        code: Code::E014,
                        rank: e.rank,
                        step: Some(e.block_stmt),
                        detail: format!("lock-order inversion: {}", witness.join("; ")),
                    });
                }
            }
            return;
        }
        for &next in adj.get(&edges[last].wanted).map(Vec::as_slice).unwrap_or(&[]) {
            if !conflict(&edges[last], &edges[next]) {
                continue;
            }
            if path.iter().any(|&i| edges[i].held == edges[next].held) {
                continue;
            }
            path.push(next);
            dfs(edges, adj, conflict, path, diags, reported);
            path.pop();
        }
    }
    for i in 0..edges.len() {
        let mut path = vec![i];
        dfs(&edges, &adj, &conflict, &mut path, &mut diags, &mut reported);
    }
    diags
}

/// Run both whole-job deadlock passes.
pub(crate) fn deadlock_passes(p: &IrProgram) -> Vec<Diagnostic> {
    let mut diags = fixpoint_pass(p);
    diags.extend(lock_order_pass(p));
    diags
}
