//! Negative-corpus sweep driver for the static analyzer.
//!
//! Generates seeded erroneous programs from every [`NegFamily`] and
//! verifies the analyzer flags each one with its expected diagnostic
//! code; with `--catalog` it additionally checks the one-per-code minimal
//! positive programs. Exits nonzero on any missed violation, so CI can
//! gate on it.
//!
//! ```text
//! cargo run -p mpisim-analyze -- --seeds 64 --catalog
//! ```

use mpisim_analyze::{
    analyze, analyze_slack, catalog_cases, generate_negative, has_code, slack_catalog_cases,
    NegFamily,
};

fn usage() -> ! {
    eprintln!(
        "usage: mpisim-analyze [--seeds N] [--catalog] [--verbose]\n\
         \n\
         Sweeps the generated negative corpus (N seeds per family; default 32)\n\
         through the static analyzer and fails if any violation is missed.\n\
         --catalog additionally sweeps the per-code minimal positive programs.\n\
         --verbose prints every diagnostic produced."
    );
    std::process::exit(2)
}

fn main() {
    let mut seeds: u64 = 32;
    let mut catalog = false;
    let mut verbose = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => {
                seeds = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--catalog" => catalog = true,
            "--verbose" => verbose = true,
            _ => usage(),
        }
    }
    if seeds == 0 {
        eprintln!("--seeds must be at least 1 (a 0-seed sweep gates nothing)");
        std::process::exit(2);
    }

    let mut checked = 0usize;
    let mut missed = 0usize;

    for family in NegFamily::ALL {
        for index in 0..seeds {
            let case = generate_negative(family, index);
            let diags = analyze(&case.program);
            checked += 1;
            if verbose {
                for d in &diags {
                    println!("  {} #{index}: {d}", family.label());
                }
            }
            if !has_code(&diags, case.expect) {
                missed += 1;
                eprintln!(
                    "MISS: {} seed {index} not flagged with {} (got: {:?})",
                    family.label(),
                    case.expect,
                    diags.iter().map(|d| d.code).collect::<Vec<_>>()
                );
            }
        }
    }

    if catalog {
        for (code, program) in catalog_cases() {
            let diags = analyze(&program);
            checked += 1;
            if verbose {
                for d in &diags {
                    println!("  catalog {code}: {d}");
                }
            }
            if !has_code(&diags, code) {
                missed += 1;
                eprintln!(
                    "MISS: catalog case for {code} not flagged (got: {:?})",
                    diags.iter().map(|d| d.code).collect::<Vec<_>>()
                );
            }
        }
        for (code, program) in slack_catalog_cases() {
            let errors = analyze(&program);
            let slack = analyze_slack(&program);
            checked += 1;
            if verbose {
                for d in &slack.diags {
                    println!("  catalog {code}: {d}");
                }
            }
            if !errors.is_empty() {
                missed += 1;
                eprintln!(
                    "MISS: slack catalog case for {code} is not E-clean (got: {:?})",
                    errors.iter().map(|d| d.code).collect::<Vec<_>>()
                );
            } else if !has_code(&slack.diags, code) {
                missed += 1;
                eprintln!(
                    "MISS: slack catalog case for {code} not flagged (got: {:?})",
                    slack.diags.iter().map(|d| d.code).collect::<Vec<_>>()
                );
            }
        }
    }

    if missed == 0 {
        println!("analyzer sweep: {checked} erroneous programs, all flagged");
    } else {
        eprintln!("analyzer sweep: {missed}/{checked} violations MISSED");
        std::process::exit(1);
    }
}
