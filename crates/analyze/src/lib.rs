//! Static and dynamic correctness analysis for the RMA epoch protocol.
//!
//! Two cooperating layers over the `mpisim-core` simulator:
//!
//! 1. **Static analyzer** ([`analyze`]) — a flow-sensitive per-(rank,
//!    window) epoch state machine over a small multi-window program IR
//!    ([`IrProgram`]). It rejects operations outside an access epoch,
//!    targets outside the start group, missing `complete`/`wait`/
//!    `unlock`, illegal synchronization-strategy mixes, conflicting
//!    overlapping put/put and put/get pairs (byte-range interval
//!    analysis), nonblocking epoch requests that are never tested or
//!    waited (with the flush-discharge rule for `iflush` requests), and
//!    reorder-flag configurations whose legality conditions ("never
//!    across `lock_all`; across fence only with `unsafe_fence_reorder`")
//!    the program violates. On top of the per-rank walk, the whole-job
//!    deadlock passes build an inter-rank wait-for graph via a symbolic
//!    ω-triple fixpoint interpreter plus a lock-acquisition-order scan,
//!    yielding E013 (cyclic cross-rank wait, with a rank-annotated
//!    witness), E014 (lock-order inversion), E015 (missing/mismatched
//!    exposure), E016 (fence-participation mismatch), E017 (wait on a
//!    never-completing request) and E018 (value-dependent deadlock: a
//!    spin on a fetched window value no reachable remote write can ever
//!    satisfy, decided by an abstract written-constants/⊤ value domain
//!    per byte of the spun slot). Each rejection is a [`Diagnostic`]
//!    with a stable [`Code`] (`E001`…) plus rank and statement
//!    provenance.
//!
//! 2. **Dynamic race detector** ([`detect_races`]) — vector-clock
//!    happens-before checking over the sync-event trace a simulated run
//!    produces. Synchronization edges are the epoch protocol's own
//!    messages (post→start and lock grants, complete→wait and unlock
//!    notifications, fence-completion announcements); data accesses carry
//!    byte ranges and access kinds. Conflicting overlapping accesses that
//!    no traced edge orders are reported as [`Race`]s.
//!
//! The static layer over-approximates (it reasons about all schedules),
//! the dynamic layer under-approximates (it sees one schedule); together
//! they bracket the protocol semantics, and `mpisim-check` runs both on
//! every generated program.
//!
//! On top of the correctness layers sits the **synchronization-slack
//! pass** ([`analyze_slack`]) with its mechanical rewriter
//! ([`rewrite`]): it classifies every blocking synchronization point as
//! elidable / relaxable / required via a per-(rank, window)
//! byte-interval dataflow (advisory codes `W001`–`W005`), and rewrites
//! the relaxable ones to their nonblocking forms — the optimization the
//! source paper argues for, proved safe differentially by
//! `mpisim-check`'s rewrite-equivalence sweep. The rewriter prices
//! every candidate relaxation with a virtual-time [`CostModel`]
//! calibrated from the engine's `sync_blocked_ns` counters, skipping
//! relaxations whose bookkeeping would cost more than the reclaimed
//! overlap, and mechanizes the W004 over-wide-group fix via symmetric
//! [`GroupShrink`] pairs.

#![warn(missing_docs)]

pub mod analyzer;
pub mod corpus;
mod deadlock;
pub mod diag;
pub mod ir;
pub mod race;
pub mod rewrite;
pub mod slack;

pub use analyzer::analyze;
pub use corpus::{
    catalog_cases, generate_negative, generate_value_clean, slack_catalog_cases, NegCase,
    NegFamily, NEG_WIN_BYTES,
};
pub use diag::{has_code, Code, Diagnostic};
pub use ir::{Close, FetchKind, IrProgram, Stmt};
pub use race::{detect_races, detect_races_in, Race, RaceAccess};
pub use rewrite::{
    rewrite, rewrite_with, rewrite_with_model, CostModel, RewriteMode, RewriteReport,
};
pub use slack::{
    analyze_slack, GroupShrink, SlackClass, SlackFinding, SlackReport, SyncKind,
};
