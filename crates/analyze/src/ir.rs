//! The analyzer's program IR: a per-rank statement list over one window.
//!
//! This is deliberately *lower-level* than the check harness's
//! `Program` type — every epoch-open, epoch-close, and data operation is
//! its own statement, with the blocking/nonblocking distinction explicit,
//! so the flow-sensitive state machine sees exactly the call sequence the
//! runtime would see. `mpisim-check` lowers its generated programs into
//! this shape (mirroring its executor) before running the analyzer.

use mpisim_core::ReduceOp;

/// Whether an epoch-closing (or epoch-opening) routine is the blocking or
/// the nonblocking (`i`-prefixed) variant. Nonblocking variants return a
/// request that must eventually be consumed via the test/wait family
/// (§VII.C) — dropping it is diagnostic [`crate::Code::E008`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Close {
    /// Blocking variant: the call itself waits for epoch completion.
    Blocking,
    /// Nonblocking variant: returns a request consumed by a later
    /// [`Stmt::WaitAll`].
    Nonblocking,
}

impl Close {
    /// Whether this close synchronizes at the call site.
    pub fn is_blocking(self) -> bool {
        matches!(self, Close::Blocking)
    }
}

/// One statement of one rank's program. All statements address the single
/// implicit window of the [`IrProgram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `MPI_WIN_FENCE` / `MPI_WIN_IFENCE`: closes the current fence epoch
    /// (if any) and opens the next fence phase.
    Fence(Close),
    /// `MPI_WIN_START`: open a GATS access epoch toward `group`.
    Start(Vec<usize>),
    /// `MPI_WIN_COMPLETE` / `MPI_WIN_ICOMPLETE`.
    Complete(Close),
    /// `MPI_WIN_POST`: open an exposure epoch toward `group`.
    Post(Vec<usize>),
    /// `MPI_WIN_WAIT` / `MPI_WIN_IWAIT`: close the exposure epoch.
    WaitEpoch(Close),
    /// `MPI_WIN_LOCK` / `MPI_WIN_ILOCK` on one target.
    Lock {
        /// Locked rank.
        target: usize,
        /// Exclusive (vs shared) lock.
        exclusive: bool,
        /// `true` for `ilock`: the dummy epoch-open request must still be
        /// consumed (§VII.C).
        nonblocking: bool,
    },
    /// `MPI_WIN_UNLOCK` / `MPI_WIN_IUNLOCK`.
    Unlock {
        /// The rank being unlocked.
        target: usize,
        /// Blocking or nonblocking close.
        close: Close,
    },
    /// `MPI_WIN_LOCK_ALL` (shared lock on every rank).
    LockAll,
    /// `MPI_WIN_UNLOCK_ALL` / `MPI_WIN_IUNLOCK_ALL`.
    UnlockAll(Close),
    /// `MPI_PUT` of `len` bytes at `disp` in `target`'s window.
    Put {
        /// Target rank.
        target: usize,
        /// Byte displacement.
        disp: usize,
        /// Length in bytes.
        len: usize,
    },
    /// `MPI_GET` of `len` bytes at `disp` from `target`'s window.
    Get {
        /// Target rank.
        target: usize,
        /// Byte displacement.
        disp: usize,
        /// Length in bytes.
        len: usize,
    },
    /// Accumulate-family atomic update of `len` bytes at `disp`.
    Acc {
        /// Target rank.
        target: usize,
        /// Byte displacement.
        disp: usize,
        /// Length in bytes.
        len: usize,
        /// Reduction operator.
        op: ReduceOp,
    },
    /// Consume every outstanding nonblocking-epoch request
    /// (`MPI_WAITALL` over the collected requests).
    WaitAll,
    /// Job-wide barrier (no effect on window epoch state).
    Barrier,
}

/// A whole-job program over one window: `ranks[r]` is rank `r`'s
/// statement sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IrProgram {
    /// Number of ranks in the job.
    pub n_ranks: usize,
    /// Window size in bytes (bounds check for [`crate::Code::E010`]).
    pub win_bytes: usize,
    /// Window info reorder flags asserted (any of the four `*_REORDER`
    /// flags): concurrently progressed epochs may activate out of order.
    pub reorder: bool,
    /// The `unsafe_fence_reorder` extension: reorder flags additionally
    /// apply across fence epochs (never across `lock_all`; §VI.B, §X).
    pub unsafe_fence_reorder: bool,
    /// Ranks the job's fault model declares crashed (NIC death at some
    /// point of the run). A surviving rank whose epoch structure blocks on
    /// one of these peers can never terminate without the watchdog
    /// cancelling the epoch — diagnostic [`crate::Code::E012`].
    pub crashed: Vec<usize>,
    /// Per-rank statement lists.
    pub ranks: Vec<Vec<Stmt>>,
}

impl IrProgram {
    /// An empty program skeleton for `n_ranks` ranks.
    pub fn new(n_ranks: usize, win_bytes: usize) -> Self {
        IrProgram {
            n_ranks,
            win_bytes,
            reorder: false,
            unsafe_fence_reorder: false,
            crashed: Vec::new(),
            ranks: vec![Vec::new(); n_ranks],
        }
    }
}
