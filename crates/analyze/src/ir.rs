//! The analyzer's program IR: per-rank statement lists over one or more
//! windows.
//!
//! This is deliberately *lower-level* than the check harness's
//! `Program` type — every epoch-open, epoch-close, flush, and data
//! operation is its own statement, with the blocking/nonblocking
//! distinction explicit and the target window named, so the
//! flow-sensitive state machine sees exactly the call sequence the
//! runtime would see. `mpisim-check` lowers its generated programs into
//! this shape (mirroring its executor) before running the analyzer.
//!
//! Every epoch/op statement carries a `win` index into
//! [`IrProgram::windows`]; single-window programs use window `0`
//! throughout (the [`IrProgram::new`] constructor allocates it).

use mpisim_core::ReduceOp;

/// Whether an epoch-closing (or epoch-opening) routine is the blocking or
/// the nonblocking (`i`-prefixed) variant. Nonblocking variants return a
/// request that must eventually be consumed via the test/wait family
/// (§VII.C) — dropping it is diagnostic [`crate::Code::E008`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Close {
    /// Blocking variant: the call itself waits for epoch completion.
    Blocking,
    /// Nonblocking variant: returns a request consumed by a later
    /// [`Stmt::WaitAll`].
    Nonblocking,
}

impl Close {
    /// Whether this close synchronizes at the call site.
    pub fn is_blocking(self) -> bool {
        matches!(self, Close::Blocking)
    }
}

/// How a value-producing read ([`Stmt::ReadValue`]) fetches its 8-byte
/// slot from the target window.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FetchKind {
    /// Plain `MPI_GET`: a non-atomic read of the slot.
    Get,
    /// `MPI_GET_ACCUMULATE` with operator `op`: atomically applies `op`
    /// to the slot and returns its prior value (`NoOp` reads without
    /// modifying).
    GetAcc(ReduceOp),
    /// `MPI_FETCH_AND_OP` with operator `op`: the single-element form of
    /// `GetAcc`.
    FetchOp(ReduceOp),
}

impl FetchKind {
    /// Whether this read is accumulate-family (element-wise atomic at
    /// the target, per the MPI `same_op_no_op` rule).
    pub fn is_atomic(self) -> bool {
        !matches!(self, FetchKind::Get)
    }

    /// The operator this read *writes* with, if it modifies the slot at
    /// all (`Get` and the `NoOp` atomics are pure reads).
    pub fn write_op(self) -> Option<ReduceOp> {
        match self {
            FetchKind::Get => None,
            FetchKind::GetAcc(op) | FetchKind::FetchOp(op) => {
                (op != ReduceOp::NoOp).then_some(op)
            }
        }
    }
}

/// One statement of one rank's program. Epoch and data statements name
/// the window they address via a `win` index into
/// [`IrProgram::windows`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `MPI_WIN_FENCE` / `MPI_WIN_IFENCE`: closes the current fence epoch
    /// (if any) and opens the next fence phase on `win`.
    Fence {
        /// Window index.
        win: usize,
        /// Blocking or nonblocking close.
        close: Close,
    },
    /// `MPI_WIN_START`: open a GATS access epoch toward `group` on `win`.
    Start {
        /// Window index.
        win: usize,
        /// Target ranks of the access epoch.
        group: Vec<usize>,
    },
    /// `MPI_WIN_COMPLETE` / `MPI_WIN_ICOMPLETE`.
    Complete {
        /// Window index.
        win: usize,
        /// Blocking or nonblocking close.
        close: Close,
    },
    /// `MPI_WIN_POST`: open an exposure epoch toward `group` on `win`.
    Post {
        /// Window index.
        win: usize,
        /// Origin ranks granted access.
        group: Vec<usize>,
    },
    /// `MPI_WIN_WAIT` / `MPI_WIN_IWAIT`: close the exposure epoch.
    WaitEpoch {
        /// Window index.
        win: usize,
        /// Blocking or nonblocking close.
        close: Close,
    },
    /// `MPI_WIN_LOCK` / `MPI_WIN_ILOCK` on one target.
    Lock {
        /// Window index.
        win: usize,
        /// Locked rank.
        target: usize,
        /// Exclusive (vs shared) lock.
        exclusive: bool,
        /// `true` for `ilock`: the dummy epoch-open request must still be
        /// consumed (§VII.C).
        nonblocking: bool,
    },
    /// `MPI_WIN_UNLOCK` / `MPI_WIN_IUNLOCK`.
    Unlock {
        /// Window index.
        win: usize,
        /// The rank being unlocked.
        target: usize,
        /// Blocking or nonblocking close.
        close: Close,
    },
    /// `MPI_WIN_LOCK_ALL` (shared lock on every rank).
    LockAll {
        /// Window index.
        win: usize,
    },
    /// `MPI_WIN_UNLOCK_ALL` / `MPI_WIN_IUNLOCK_ALL`.
    UnlockAll {
        /// Window index.
        win: usize,
        /// Blocking or nonblocking close.
        close: Close,
    },
    /// `MPI_WIN_FLUSH` family: force completion of operations issued so
    /// far in the surrounding passive-target epoch, without closing it.
    /// The engine implements this by age-stamping the epoch's in-flight
    /// requests and completing the stamped prefix (`FlushState`), so a
    /// blocking flush discharges every earlier nonblocking request of
    /// the covered scope — see the E008 discharge rule.
    Flush {
        /// Window index.
        win: usize,
        /// `Some(rank)` for `flush`/`flush_local`; `None` for the
        /// `_all` variants covering every locked target.
        target: Option<usize>,
        /// `flush_local` family: completes locally only (origin buffers
        /// reusable), not at the target.
        local_only: bool,
        /// Blocking (`flush*`) or nonblocking (`iflush*`) variant.
        close: Close,
    },
    /// `MPI_PUT` of `len` bytes at `disp` in `target`'s window.
    Put {
        /// Window index.
        win: usize,
        /// Target rank.
        target: usize,
        /// Byte displacement.
        disp: usize,
        /// Length in bytes.
        len: usize,
    },
    /// `MPI_GET` of `len` bytes at `disp` from `target`'s window.
    Get {
        /// Window index.
        win: usize,
        /// Target rank.
        target: usize,
        /// Byte displacement.
        disp: usize,
        /// Length in bytes.
        len: usize,
    },
    /// Accumulate-family atomic update of `len` bytes at `disp`.
    Acc {
        /// Window index.
        win: usize,
        /// Target rank.
        target: usize,
        /// Byte displacement.
        disp: usize,
        /// Length in bytes.
        len: usize,
        /// Reduction operator.
        op: ReduceOp,
    },
    /// Value-producing read: fetch the 8-byte slot at `disp` of
    /// `target`'s window and bind its value to IR local `local`. The
    /// binding is what value-dependent guards ([`Stmt::SpinUntil`])
    /// reference; rebinding a local shadows the earlier definition.
    ReadValue {
        /// Window index.
        win: usize,
        /// Target rank.
        target: usize,
        /// Byte displacement of the 8-byte slot.
        disp: usize,
        /// Get / get_accumulate / fetch_and_op flavour.
        kind: FetchKind,
        /// The IR local the fetched value is bound to.
        local: usize,
    },
    /// Accumulate-family atomic write of the *known* 8-byte constant
    /// `val` (little-endian) at `disp` of `target`'s window — the
    /// flag-publication half of value-dependent synchronization. With
    /// `op == Replace` the slot's post-state is exactly `val`; any other
    /// operator folds `val` into the prior contents. (The existing
    /// [`Stmt::Acc`] models an accumulate whose operand is unknown.)
    AccVal {
        /// Window index.
        win: usize,
        /// Target rank.
        target: usize,
        /// Byte displacement of the 8-byte slot.
        disp: usize,
        /// Reduction operator.
        op: ReduceOp,
        /// The known operand value.
        val: u64,
    },
    /// Value-dependent guard: re-execute `local`'s defining
    /// [`Stmt::ReadValue`] (fetch + flush) until the fetched value
    /// equals `expect` — the flag/counter/lock-word spin at the heart of
    /// value-dependent synchronization. The spin blocks the host like a
    /// blocking close; whether it can ever be satisfied is decided by
    /// the abstract value domain of the whole-job deadlock pass
    /// ([`crate::Code::E018`]). Spinning on a local no dominating
    /// `ReadValue` binds is a no-op.
    SpinUntil {
        /// The IR local whose defining read is re-executed.
        local: usize,
        /// The value the spin waits for.
        expect: u64,
    },
    /// Consume every outstanding nonblocking-epoch request
    /// (`MPI_WAITALL` over the collected requests).
    WaitAll,
    /// Job-wide barrier (no effect on window epoch state).
    Barrier,
}

impl Stmt {
    /// The window this statement addresses, if any (`WaitAll` and
    /// `Barrier` are window-less).
    pub fn win(&self) -> Option<usize> {
        match *self {
            Stmt::Fence { win, .. }
            | Stmt::Start { win, .. }
            | Stmt::Complete { win, .. }
            | Stmt::Post { win, .. }
            | Stmt::WaitEpoch { win, .. }
            | Stmt::Lock { win, .. }
            | Stmt::Unlock { win, .. }
            | Stmt::LockAll { win }
            | Stmt::UnlockAll { win, .. }
            | Stmt::Flush { win, .. }
            | Stmt::Put { win, .. }
            | Stmt::Get { win, .. }
            | Stmt::Acc { win, .. }
            | Stmt::ReadValue { win, .. }
            | Stmt::AccVal { win, .. } => Some(win),
            // A spin addresses its defining read's window indirectly;
            // the walker resolves the binding itself.
            Stmt::SpinUntil { .. } | Stmt::WaitAll | Stmt::Barrier => None,
        }
    }
}

/// A whole-job program over one or more windows: `ranks[r]` is rank
/// `r`'s statement sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IrProgram {
    /// Number of ranks in the job.
    pub n_ranks: usize,
    /// Size in bytes of each window, indexed by the `win` field of
    /// statements (bounds check for [`crate::Code::E010`]).
    pub windows: Vec<usize>,
    /// Window info reorder flags asserted (any of the four `*_REORDER`
    /// flags): concurrently progressed epochs may activate out of order.
    pub reorder: bool,
    /// The `unsafe_fence_reorder` extension: reorder flags additionally
    /// apply across fence epochs (never across `lock_all`; §VI.B, §X).
    pub unsafe_fence_reorder: bool,
    /// Ranks the job's fault model declares crashed (NIC death at some
    /// point of the run). A surviving rank whose epoch structure blocks on
    /// one of these peers can never terminate without the watchdog
    /// cancelling the epoch — diagnostic [`crate::Code::E012`].
    pub crashed: Vec<usize>,
    /// Ranks in [`IrProgram::crashed`] that the recovery subsystem
    /// restarts from an epoch-aligned checkpoint after a bounded outage.
    /// Their NIC comes back, the reliability sublayer retransmits across
    /// the outage, and the restored window + ω state let every blocked
    /// grant and completion notification eventually arrive — so the
    /// [`crate::Code::E012`] rule is relaxed for dependencies on them.
    /// Listing a rank here without also listing it in `crashed` has no
    /// effect.
    pub recovered: Vec<usize>,
    /// Per-rank statement lists.
    pub ranks: Vec<Vec<Stmt>>,
}

impl IrProgram {
    /// An empty program skeleton for `n_ranks` ranks with a single
    /// window (index 0) of `win_bytes` bytes.
    pub fn new(n_ranks: usize, win_bytes: usize) -> Self {
        IrProgram {
            n_ranks,
            windows: vec![win_bytes],
            reorder: false,
            unsafe_fence_reorder: false,
            crashed: Vec::new(),
            recovered: Vec::new(),
            ranks: vec![Vec::new(); n_ranks],
        }
    }

    /// Allocate an additional window of `bytes` bytes; returns its
    /// index for use in statements.
    pub fn add_window(&mut self, bytes: usize) -> usize {
        self.windows.push(bytes);
        self.windows.len() - 1
    }
}
