//! Stable diagnostic codes and the diagnostic record.
//!
//! Codes are append-only: a code's meaning never changes once released, so
//! test suites and CI greps can rely on them.

/// A stable diagnostic code of the static analyzer.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// RMA data operation issued with no open access epoch covering the
    /// target (engine error `NoEpoch`).
    E001,
    /// Operation target outside the current GATS start group (or an
    /// invalid rank number).
    E002,
    /// Epoch opened but never closed by the end of the rank's program:
    /// missing `complete`, `wait`, `unlock`, `unlock_all`, or a trailing
    /// fence phase that issued operations.
    E003,
    /// Epoch-closing routine without a matching open (engine error
    /// `EpochMismatch`).
    E004,
    /// Illegal synchronization-strategy mix on one window (engine error
    /// `AlreadyInEpoch`): e.g. `start` inside a lock epoch, `fence` with
    /// an exposure epoch open. A *dormant* trailing fence (no operations
    /// issued) is tolerated, mirroring the engine.
    E005,
    /// Conflicting write/write accesses (put/put, or accumulates with
    /// different operators) to overlapping bytes of one target window from
    /// different origins within one concurrency scope.
    E006,
    /// Conflicting read/write accesses (put/get) to overlapping bytes of
    /// one target window from different origins within one concurrency
    /// scope.
    E007,
    /// A nonblocking epoch request (open or close) is never consumed by
    /// the test/wait family before the end of the rank's program.
    E008,
    /// Reorder flags assert disjointness the program violates: two epochs
    /// of one origin that may progress concurrently (per the flags and the
    /// "never across `lock_all`, across fence only with
    /// `unsafe_fence_reorder`" rule) issue conflicting overlapping
    /// accesses to the same target.
    E009,
    /// Operation byte range exceeds the target window bounds.
    E010,
    /// Cross-rank synchronization matching mismatch: unequal collective
    /// fence counts, or `start`/`post` pairing counts that differ between
    /// an origin and a target (a deadlock at runtime).
    E011,
    /// Unguarded remote dependency: the fault model crashes a peer this
    /// rank's epoch structure blocks on — a start toward a peer whose
    /// exposure may never open, a lock whose grant may never arrive, a
    /// post waiting on a dead origin's completion, or a collective with a
    /// dead participant. Without the stall watchdog the program cannot
    /// terminate if the crash lands before the dependency is satisfied.
    /// Relaxed for crashed-then-restarted ranks: a peer the recovery
    /// subsystem restarts from an epoch-aligned checkpoint
    /// (`IrProgram::recovered`) satisfies its dependencies after the
    /// bounded outage, so no E012 is reported for it.
    E012,
    /// Cyclic cross-rank wait: the whole-job fixpoint interpreter left
    /// two or more ranks mutually blocked — each rank's earliest
    /// non-completable blocking point waits on a peer that (transitively)
    /// waits back on it. Reported with a rank-annotated cycle witness
    /// (`"rank 0 -> rank 1 -> rank 0"`).
    E013,
    /// Lock-order inversion: two ranks acquire the same pair of
    /// exclusive-lock targets on one window in opposite orders, and each
    /// blocks on the second lock's epoch while still holding the first —
    /// a classic ABBA deadlock in the passive-target plane.
    E014,
    /// Missing or mismatched exposure: a GATS access epoch blocks on a
    /// grant (`complete`/`wait`) whose matching `post`/completion the
    /// peer's program never issues — the peer terminates without ever
    /// satisfying the dependency, so the access id is provably never
    /// granted.
    E015,
    /// Fence-participation mismatch: a rank blocks in a collective fence
    /// phase that some job rank never reaches (it terminates with fewer
    /// fence calls on that window), so the collective can never complete.
    E016,
    /// Wait on a never-completing request: a `wait`/`waitall` consumes a
    /// nonblocking-epoch request whose completion condition is provably
    /// unsatisfiable (the peer side of the epoch has terminated), so the
    /// wait can never return.
    E017,
    /// Value-dependent deadlock: a rank spins on a fetched window value
    /// ([`crate::Stmt::SpinUntil`]) that no reachable remote write can
    /// ever produce. The abstract value domain tracks, per byte of the
    /// spun slot, the window's zero initialization plus every constant a
    /// reachable `AccVal`/`Replace` write can deposit (unknown-operand
    /// writes are ⊤ and conservatively suppress the report); when some
    /// byte of the expected value is outside that set for every write
    /// any rank can still execute, the spin is provably unsatisfiable.
    E018,
    /// Advisory: redundant blocking flush. The flush's completion
    /// guarantee is never consumed — no later statement depends on the
    /// covered operations before their epoch closes and it discharges no
    /// earlier full `iflush` request — so it can be elided, or weakened
    /// to `flush_local` when only local-only `iflush` requests ride on
    /// it. Emitted by the slack pass ([`crate::analyze_slack`]), never by
    /// [`crate::analyze`].
    W001,
    /// Advisory: active-target epoch close (fence phase close,
    /// `complete`, `wait`) relaxable to its nonblocking form — the
    /// dataflow finds no dependent use of the covered operations before
    /// the computed deferred-wait point, so the blocking call only
    /// serializes the host (the paper's §V motivation).
    W002,
    /// Advisory: passive-target epoch close (`unlock`, `unlock_all`)
    /// relaxable to its deferred nonblocking form (`iunlock` +
    /// later wait), for the same no-dependent-use reason as
    /// [`Code::W002`].
    W003,
    /// Advisory: over-wide access epoch — a GATS `start` group names
    /// targets the epoch never issues an operation toward, forcing the
    /// runtime to collect grants (and the targets to expose) for
    /// nothing. Advisory only: narrowing the group changes the
    /// cross-rank `start`/`post` matching, so no rewrite is applied.
    W004,
    /// Advisory: dead exposure epoch — a `post`/`wait` pair whose
    /// granted origins never issue an operation toward this rank inside
    /// the matched access epochs; the exposure synchronizes nothing.
    /// Advisory only (removal changes collective matching).
    W005,
}

impl Code {
    /// Every *error* code, in order. These are the codes [`crate::analyze`]
    /// enforces; the advisory W-series ([`Code::ADVISORY`]) is emitted
    /// only by the synchronization-slack pass ([`crate::analyze_slack`]).
    pub const ALL: [Code; 18] = [
        Code::E001,
        Code::E002,
        Code::E003,
        Code::E004,
        Code::E005,
        Code::E006,
        Code::E007,
        Code::E008,
        Code::E009,
        Code::E010,
        Code::E011,
        Code::E012,
        Code::E013,
        Code::E014,
        Code::E015,
        Code::E016,
        Code::E017,
        Code::E018,
    ];

    /// Every advisory (over-synchronization) code, in order.
    pub const ADVISORY: [Code; 5] =
        [Code::W001, Code::W002, Code::W003, Code::W004, Code::W005];

    /// The stable code string (`"E001"` …).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::E001 => "E001",
            Code::E002 => "E002",
            Code::E003 => "E003",
            Code::E004 => "E004",
            Code::E005 => "E005",
            Code::E006 => "E006",
            Code::E007 => "E007",
            Code::E008 => "E008",
            Code::E009 => "E009",
            Code::E010 => "E010",
            Code::E011 => "E011",
            Code::E012 => "E012",
            Code::E013 => "E013",
            Code::E014 => "E014",
            Code::E015 => "E015",
            Code::E016 => "E016",
            Code::E017 => "E017",
            Code::E018 => "E018",
            Code::W001 => "W001",
            Code::W002 => "W002",
            Code::W003 => "W003",
            Code::W004 => "W004",
            Code::W005 => "W005",
        }
    }

    /// Short human title.
    pub fn title(self) -> &'static str {
        match self {
            Code::E001 => "operation outside any access epoch",
            Code::E002 => "target outside the start group",
            Code::E003 => "epoch never closed",
            Code::E004 => "close without matching open",
            Code::E005 => "illegal synchronization mix on one window",
            Code::E006 => "conflicting writes to overlapping bytes",
            Code::E007 => "unordered read/write overlap",
            Code::E008 => "nonblocking epoch request never consumed",
            Code::E009 => "reorder flags violate epoch disjointness",
            Code::E010 => "operation exceeds window bounds",
            Code::E011 => "cross-rank synchronization mismatch",
            Code::E012 => "unguarded remote dependency",
            Code::E013 => "cyclic cross-rank wait",
            Code::E014 => "lock-order inversion",
            Code::E015 => "missing or mismatched exposure",
            Code::E016 => "fence-participation mismatch",
            Code::E017 => "wait on never-completing request",
            Code::E018 => "value-dependent deadlock",
            Code::W001 => "redundant blocking flush",
            Code::W002 => "fence/GATS close relaxable to nonblocking",
            Code::W003 => "lock epoch close relaxable to deferred",
            Code::W004 => "over-wide access epoch",
            Code::W005 => "dead exposure epoch",
        }
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One reported violation, with rank/statement provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Rank whose program the diagnostic is anchored at.
    pub rank: usize,
    /// Statement index within that rank's program (`None` for end-of-
    /// program diagnostics such as an unclosed epoch reported at exit).
    pub step: Option<usize>,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.step {
            Some(s) => write!(
                f,
                "{} [rank {} stmt {}] {}: {}",
                self.code,
                self.rank,
                s,
                self.code.title(),
                self.detail
            ),
            None => write!(
                f,
                "{} [rank {} end] {}: {}",
                self.code,
                self.rank,
                self.code.title(),
                self.detail
            ),
        }
    }
}

/// Whether `diags` contains at least one diagnostic of `code`.
pub fn has_code(diags: &[Diagnostic], code: Code) -> bool {
    diags.iter().any(|d| d.code == code)
}
