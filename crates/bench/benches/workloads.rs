//! Criterion benchmarks of whole simulated jobs: real wall-clock cost of
//! simulating each epoch flavour end to end, and of the two application
//! kernels at test scale. These gate the *simulator's* performance — the
//! virtual-time results themselves come from the figure harnesses.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use mpisim_apps::{run_lu, run_transactions, LuConfig, LuSync, TxConfig, TxMode};
use mpisim_core::{run_job, Group, JobConfig, LockKind, Rank};

fn bench_lock_epoch_job(c: &mut Criterion) {
    c.bench_function("job_20_lock_epochs_4_ranks", |b| {
        b.iter(|| {
            let report = run_job(JobConfig::all_internode(4), |env| {
                let win = env.win_allocate(64).unwrap();
                env.barrier().unwrap();
                let t = Rank((env.rank().idx() + 1) % env.n_ranks());
                for _ in 0..20 {
                    env.lock(win, t, LockKind::Exclusive).unwrap();
                    env.put(win, t, 0, &[1u8; 64]).unwrap();
                    env.unlock(win, t).unwrap();
                }
                env.barrier().unwrap();
                env.win_free(win).unwrap();
            })
            .unwrap();
            black_box(report.sim.events_executed)
        })
    });
}

fn bench_gats_epoch_job(c: &mut Criterion) {
    c.bench_function("job_20_gats_epochs_2_ranks", |b| {
        b.iter(|| {
            let report = run_job(JobConfig::all_internode(2), |env| {
                let win = env.win_allocate(64).unwrap();
                env.barrier().unwrap();
                for _ in 0..20 {
                    if env.rank().idx() == 0 {
                        env.start(win, Group::single(Rank(1))).unwrap();
                        env.put(win, Rank(1), 0, &[2u8; 64]).unwrap();
                        env.complete(win).unwrap();
                    } else {
                        env.post(win, Group::single(Rank(0))).unwrap();
                        env.wait_epoch(win).unwrap();
                    }
                }
                env.barrier().unwrap();
                env.win_free(win).unwrap();
            })
            .unwrap();
            black_box(report.sim.events_executed)
        })
    });
}

fn bench_fence_epoch_job(c: &mut Criterion) {
    c.bench_function("job_20_fence_epochs_4_ranks", |b| {
        b.iter(|| {
            let report = run_job(JobConfig::all_internode(4), |env| {
                let win = env.win_allocate(64).unwrap();
                env.fence(win).unwrap();
                let t = Rank((env.rank().idx() + 1) % env.n_ranks());
                for _ in 0..20 {
                    env.put(win, t, 0, &[3u8; 8]).unwrap();
                    env.fence(win).unwrap();
                }
                env.win_free(win).unwrap();
            })
            .unwrap();
            black_box(report.sim.events_executed)
        })
    });
}

fn bench_transactions_kernel(c: &mut Criterion) {
    c.bench_function("transactions_8ranks_50txs", |b| {
        b.iter(|| {
            let res = run_transactions(
                JobConfig::all_internode(8),
                TxConfig {
                    txs_per_rank: 50,
                    payload: 16,
                    slots: 64,
                    mode: TxMode::Nonblocking { max_inflight: 8 },
                    aaar: true,
                    think_time: mpisim_sim::SimTime::ZERO,
                    dist: mpisim_apps::TargetDist::Uniform,
                },
            )
            .unwrap();
            black_box(res.checksum)
        })
    });
}

fn bench_lu_kernel(c: &mut Criterion) {
    c.bench_function("lu_real_32x32_4ranks", |b| {
        b.iter(|| {
            let res = run_lu(
                JobConfig::all_internode(4),
                LuConfig::small(32, LuSync::Nonblocking),
            )
            .unwrap();
            black_box(res.max_error)
        })
    });
}

criterion_group!(
    benches,
    bench_lock_epoch_job,
    bench_gats_epoch_job,
    bench_fence_epoch_job,
    bench_transactions_kernel,
    bench_lu_kernel
);
criterion_main!(benches);
