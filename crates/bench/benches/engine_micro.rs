//! Criterion microbenchmarks of the middleware's hot data structures and
//! of the simulation kernel itself (real wall-clock time, not virtual
//! time): the O(1) epoch-matching packet codec, the intranode 64-bit FIFO,
//! the request table, and raw event throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use mpisim_core::msg::SyncPacket;
use mpisim_core::request::{ReqKind, ReqTable};
use mpisim_core::types::{Rank, WinId};
use mpisim_net::U64Fifo;
use mpisim_sim::{Sim, SimTime};

fn bench_sync_packet_codec(c: &mut Criterion) {
    c.bench_function("sync_packet_encode_decode", |b| {
        b.iter(|| {
            let p = SyncPacket::GatsDone {
                win: WinId(black_box(3)),
                origin: Rank(black_box(1234)),
                access_id: black_box(567_890),
            };
            let w = p.encode();
            black_box(SyncPacket::decode(w))
        })
    });
}

fn bench_fifo(c: &mut Criterion) {
    c.bench_function("u64_fifo_push_pop_64", |b| {
        let mut f = U64Fifo::new(128);
        b.iter(|| {
            for i in 0..64u64 {
                f.push(black_box(i));
            }
            let mut acc = 0u64;
            while let Some(v) = f.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

fn bench_request_table(c: &mut Criterion) {
    c.bench_function("req_table_alloc_complete_consume", |b| {
        let mut t = ReqTable::new();
        b.iter(|| {
            let r = t.alloc(ReqKind::Comm);
            t.complete(r, None);
            black_box(t.consume(r).unwrap())
        })
    });
}

fn bench_sim_event_throughput(c: &mut Criterion) {
    c.bench_function("sim_10k_chained_events", |b| {
        b.iter(|| {
            let sim = Sim::new(0);
            let h = sim.handle();
            fn chain(h: mpisim_sim::SimHandle, left: u32) {
                if left == 0 {
                    return;
                }
                let h2 = h.clone();
                h.schedule(SimTime::from_nanos(10), move || chain(h2, left - 1));
            }
            chain(h, 10_000);
            black_box(sim.run().unwrap().events_executed)
        })
    });
}

fn bench_process_switching(c: &mut Criterion) {
    c.bench_function("sim_proc_1k_context_switches", |b| {
        b.iter(|| {
            let mut sim = Sim::new(0);
            sim.spawn("worker", |ctx| {
                for _ in 0..500 {
                    ctx.advance(SimTime::from_nanos(5));
                }
            });
            black_box(sim.run().unwrap().context_switches)
        })
    });
}

criterion_group!(
    benches,
    bench_sync_packet_codec,
    bench_fifo,
    bench_request_table,
    bench_sim_event_throughput,
    bench_process_switching
);
criterion_main!(benches);
