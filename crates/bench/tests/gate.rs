//! Unit tests for the `bench-gate` comparator: schema round-trip,
//! regression detection at >10%, the equal-counters requirement, and
//! missing-baseline tolerance — with checked-in fixture JSONs under
//! `tests/fixtures/` and the actual `bench_gate` binary driven for exit
//! codes.

use mpisim_bench::gate::{gate, parse_trajectory, Json};
use mpisim_bench::macrobench::{trajectory_json, BenchResult};
use mpisim_core::EngineStats;

const BASE: &str = include_str!("fixtures/base.json");
const REGRESSED: &str = include_str!("fixtures/regressed_equal_counters.json");
const DIFFERENT: &str = include_str!("fixtures/slower_different_counters.json");
const WITH_NEW: &str = include_str!("fixtures/current_with_new_benchmark.json");

/// A synthetic result with a distinctive counter pattern.
fn synthetic(name: &'static str, wall_ns: u128) -> BenchResult {
    let e = EngineStats {
        sweeps: 1234,
        step_runs: [1, 2, 3, 4, 5, 6, 7],
        ops_issued: 512,
        fifo_packets: 99,
        fifo_drained: 99,
        notices_batched: 42,
        acks_coalesced: 17,
        epochs_opened: 8,
        epochs_completed: 8,
        ..EngineStats::default()
    };
    BenchResult {
        name,
        ranks: 8,
        ops: 512,
        wall_ns,
        virt_ns: 1_000_000,
        peak_rss_kb: 2048,
        engine: e,
    }
}

#[test]
fn schema_round_trips_through_writer_and_parser() {
    let results = vec![synthetic("alpha", 10_240_000), synthetic("beta", 20_480_000)];
    let text = trajectory_json(6, false, &results);
    let t = parse_trajectory(&text).expect("writer output must parse");
    assert_eq!(t.pr, 6);
    assert_eq!(t.mode, "full");
    assert_eq!(t.benchmarks.len(), 2);
    let a = &t.benchmarks[0];
    assert_eq!(a.name, "alpha");
    assert!((a.ns_per_op - 20_000.0).abs() < 0.1);
    // Counters survive exactly, including the PR-6 batching counters and
    // the step_runs array.
    let get = |k: &str| a.counters.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone());
    assert_eq!(get("sweeps"), Some(Json::Num("1234".into())));
    assert_eq!(get("notices_batched"), Some(Json::Num("42".into())));
    assert_eq!(get("acks_coalesced"), Some(Json::Num("17".into())));
    let Some(Json::Arr(steps)) = get("step_runs") else {
        panic!("step_runs must parse as an array")
    };
    assert_eq!(steps.len(), 7);
    assert_eq!(steps[6], Json::Num("7".into()));
}

#[test]
fn regression_over_threshold_at_equal_counters_fails() {
    let base = parse_trajectory(BASE).unwrap();
    let cur = parse_trajectory(REGRESSED).unwrap();
    let rep = gate(Some(&base), &cur, 0.10);
    assert!(!rep.ok(), "{:?}", rep.lines);
    // halo_fence is +25% at byte-identical counters: hard failure. The
    // new one-sided counters (notices_batched, acks_coalesced) must not
    // break the equality.
    assert_eq!(rep.failures.len(), 1, "{:?}", rep.failures);
    assert!(rep.failures[0].contains("halo_fence"), "{:?}", rep.failures);
    // gats_pipeline is only +5%: under the threshold, not a failure.
    assert!(rep.lines.iter().any(|l| l.contains("gats_pipeline")));
}

#[test]
fn regression_with_unequal_counters_is_informational_only() {
    let base = parse_trajectory(BASE).unwrap();
    let cur = parse_trajectory(DIFFERENT).unwrap();
    let rep = gate(Some(&base), &cur, 0.10);
    assert!(rep.ok(), "{:?}", rep.failures);
    assert!(
        rep.lines.iter().any(|l| l.contains("UNEQUAL") && l.contains("informational")),
        "{:?}",
        rep.lines
    );
}

#[test]
fn improvement_at_equal_counters_passes() {
    // Swap the roles: the regressed file as baseline makes the base file
    // a 20% improvement at equal counters.
    let base = parse_trajectory(REGRESSED).unwrap();
    let cur = parse_trajectory(BASE).unwrap();
    let rep = gate(Some(&base), &cur, 0.10);
    assert!(rep.ok(), "{:?}", rep.failures);
}

#[test]
fn new_benchmark_without_baseline_row_is_noted_not_failed() {
    // Workloads land over time (PR 8 added the ranks sweep), so a row
    // present only in the current file must never fail the gate — it has
    // nothing to regress against. It gets a structural note instead, and
    // rows the current file *does* share with the baseline are still
    // compared normally. Row-level schema growth (`peak_rss_kb`) must
    // also pass through the parser untouched.
    let base = parse_trajectory(BASE).unwrap();
    let cur = parse_trajectory(WITH_NEW).unwrap();
    assert_eq!(cur.benchmarks.len(), 2);
    let rep = gate(Some(&base), &cur, 0.10);
    assert!(rep.ok(), "{:?}", rep.failures);
    assert!(
        rep.lines
            .iter()
            .any(|l| l.contains("ranks_sweep_4096") && l.contains("new benchmark")),
        "{:?}",
        rep.lines
    );
    // The shared row still produced a real comparison line.
    assert!(
        rep.lines.iter().any(|l| l.contains("halo_fence") && l.contains("counters")),
        "{:?}",
        rep.lines
    );
}

#[test]
fn missing_baseline_is_tolerated() {
    let cur = parse_trajectory(BASE).unwrap();
    let rep = gate(None, &cur, 0.10);
    assert!(rep.ok());
    assert!(rep.lines.iter().any(|l| l.contains("vacuously")), "{:?}", rep.lines);
}

#[test]
fn garbled_input_is_an_error_not_a_pass() {
    assert!(parse_trajectory("{").is_err());
    assert!(parse_trajectory("{\"schema\": \"something-else\"}").is_err());
    assert!(parse_trajectory("{\"schema\": \"mpisim-bench-trajectory-v1\"}").is_err());
}

/// Drive the actual binary for its exit-code contract (0 pass / 1 fail /
/// 0 on missing baseline), the same way CI calls it.
#[test]
fn binary_exit_codes_match_the_contract() {
    let bin = env!("CARGO_BIN_EXE_bench_gate");
    let fix = |n: &str| format!("{}/tests/fixtures/{n}", env!("CARGO_MANIFEST_DIR"));
    let run = |args: &[&str]| {
        std::process::Command::new(bin).args(args).output().expect("spawn bench_gate")
    };

    let pass = run(&["--baseline", &fix("base.json"), "--current", &fix("slower_different_counters.json")]);
    assert!(pass.status.success(), "{}", String::from_utf8_lossy(&pass.stderr));

    let fail = run(&["--baseline", &fix("base.json"), "--current", &fix("regressed_equal_counters.json")]);
    assert_eq!(fail.status.code(), Some(1), "{}", String::from_utf8_lossy(&fail.stdout));
    assert!(String::from_utf8_lossy(&fail.stderr).contains("halo_fence"));

    let vacuous = run(&["--baseline", &fix("no_such_file.json"), "--current", &fix("base.json")]);
    assert!(vacuous.status.success());
    assert!(String::from_utf8_lossy(&vacuous.stdout).contains("vacuously"));

    let grown = run(&[
        "--baseline",
        &fix("base.json"),
        "--current",
        &fix("current_with_new_benchmark.json"),
    ]);
    assert!(grown.status.success(), "{}", String::from_utf8_lossy(&grown.stderr));
    assert!(String::from_utf8_lossy(&grown.stdout).contains("new benchmark"));
}
