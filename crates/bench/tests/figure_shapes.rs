//! Shape assertions for every reproduced figure: `cargo test` fails if a
//! regression flips who wins, erases a crossover, or breaks a magnitude
//! the paper reports. (Full tables print via the `fig*` binaries; these
//! tests run the same harness functions.)

use mpisim_bench::{fig12, fig13, flags, micro};

const MV: &str = "MVAPICH";
const NEW: &str = "New";
const NB: &str = "New nonblocking";

#[test]
fn fig00_latency_parity_and_overlap() {
    let lat = micro::fig00_lock_put_latency();
    for size in ["4B", "64KB", "1MB"] {
        let a = lat.cell(size, MV).unwrap();
        let b = lat.cell(size, NEW).unwrap();
        let c = lat.cell(size, NB).unwrap();
        // Parity: within 15% of each other at every size.
        let max = a.max(b).max(c);
        let min = a.min(b).min(c);
        assert!(
            max / min < 1.15,
            "latency parity broken at {size}: {a} / {b} / {c}"
        );
    }
    let ov = micro::fig00_lock_overlap();
    let mv = ov.cell("epoch length", MV).unwrap();
    let new = ov.cell("epoch length", NEW).unwrap();
    // MVAPICH: no overlap (work + transfer ≈ 640); New: overlap (≈ 345).
    assert!(mv > new + 200.0, "lock-epoch overlap shape broken: {mv} vs {new}");
}

#[test]
fn fig02_shape() {
    let t = micro::fig02_late_post();
    // All three access epochs absorb the late post.
    for s in [MV, NEW, NB] {
        let e = t.cell("access epoch", s).unwrap();
        assert!((1300.0..1500.0).contains(&e), "{s} epoch {e}");
    }
    // Only nonblocking overlaps the two-sided transfer.
    let cum_blocking = t.cell("cumulative", NEW).unwrap();
    let cum_nb = t.cell("cumulative", NB).unwrap();
    assert!(cum_blocking > 1600.0);
    assert!(cum_nb < 1450.0);
}

#[test]
fn fig03_and_fig05_shapes() {
    for t in [micro::fig03_late_complete(), micro::fig05_wait_at_fence()] {
        // Blocking propagates the 1000 µs work at every size.
        for size in ["4B", "1MB"] {
            assert!(t.cell(size, MV).unwrap() > 950.0);
            assert!(t.cell(size, NEW).unwrap() > 950.0);
        }
        // Nonblocking: transfer only (small at 4B, ≈340 at 1MB).
        assert!(t.cell("4B", NB).unwrap() < 50.0);
        let one_mb = t.cell("1MB", NB).unwrap();
        assert!((300.0..420.0).contains(&one_mb));
        // MVAPICH grows with size (issue-at-close), New stays flat.
        assert!(t.cell("1MB", MV).unwrap() > t.cell("4B", MV).unwrap() + 250.0);
    }
}

#[test]
fn fig04_shape() {
    let t = micro::fig04_early_fence();
    for size in ["256KB", "1MB"] {
        let blocking = t.cell(size, NEW).unwrap();
        let nb = t.cell(size, NB).unwrap();
        assert!(nb < 1100.0, "{size}: nonblocking cumulative {nb}");
        assert!(blocking > nb, "{size}: {blocking} vs {nb}");
    }
    // The blocking penalty equals the transfer time, so it grows with size.
    assert!(t.cell("1MB", NEW).unwrap() > t.cell("256KB", NEW).unwrap() + 150.0);
}

#[test]
fn fig06_shape() {
    let t = micro::fig06_late_unlock();
    // MVAPICH: no overlap in the first epoch, immunity in the second.
    assert!(t.cell("first lock (O0)", MV).unwrap() > 1250.0);
    assert!(t.cell("second lock (O1)", MV).unwrap() < 500.0);
    // New blocking: overlap in the first, Late Unlock in the second.
    assert!(t.cell("first lock (O0)", NEW).unwrap() < 1100.0);
    assert!(t.cell("second lock (O1)", NEW).unwrap() > 1100.0);
    // Nonblocking: overlap and no Late Unlock (≈ two transfers).
    assert!(t.cell("first lock (O0)", NB).unwrap() < 1100.0);
    assert!(t.cell("second lock (O1)", NB).unwrap() < 800.0);
}

#[test]
fn flag_figures_shapes() {
    let f7 = flags::fig07_aaar_gats();
    assert!(f7.cell("target T1", "A_A_A_R off").unwrap() > 1400.0);
    assert!(f7.cell("target T1", "A_A_A_R on").unwrap() < 800.0);
    assert!(
        f7.cell("origin cumulative", "A_A_A_R on").unwrap()
            < f7.cell("origin cumulative", "A_A_A_R off").unwrap() - 200.0
    );

    let f8 = flags::fig08_aaar_lock();
    let row = "cumulative O1 epochs (1MB)";
    assert!(
        f8.cell(row, "A_A_A_R on").unwrap() < f8.cell(row, "A_A_A_R off").unwrap() - 200.0
    );

    let f9 = flags::fig09_aaer();
    assert!(f9.cell("target P1", "A_A_E_R off").unwrap() > 1400.0);
    assert!(f9.cell("target P1", "A_A_E_R on").unwrap() < 800.0);

    let f10 = flags::fig10_eaer();
    assert!(f10.cell("origin O1", "E_A_E_R off").unwrap() > 1400.0);
    assert!(f10.cell("origin O1", "E_A_E_R on").unwrap() < 800.0);

    let f11 = flags::fig11_eaar();
    assert!(f11.cell("origin P1", "E_A_A_R off").unwrap() > 1400.0);
    assert!(f11.cell("origin P1", "E_A_A_R on").unwrap() < 800.0);
}

#[test]
fn fig12_shape_quick() {
    let t = fig12::run(&fig12::Fig12Opts::quick());
    for row in ["8", "16", "32"] {
        let mv = t.cell(row, MV).unwrap();
        let nb = t.cell(row, NB).unwrap();
        let aaar = t.cell(row, "New nonblocking + A_A_A_R").unwrap();
        // A_A_A_R clearly dominates; NB is at least in blocking's league.
        assert!(aaar > 1.15 * nb, "{row}: {aaar} vs nb {nb}");
        assert!(nb > 0.85 * mv, "{row}: nb {nb} vs mvapich {mv}");
    }
    // Throughput scales with ranks (uniform random targets).
    assert!(t.cell("32", MV).unwrap() > t.cell("8", MV).unwrap());
}

#[test]
fn fig12_checksum_csv_is_fault_invariant() {
    // The `--faults` mode's core claim at unit scale: replaying the sweep
    // on a lossy network (reliability armed) moves throughput but may not
    // change one byte of the checksum-validation CSV.
    let opts = fig12::Fig12Opts {
        job_sizes: vec![8],
        txs_per_rank: 20,
        max_inflight: 4,
        cores_per_node: 4,
    };
    let clean = fig12::validation_csv(&opts, None);
    let faulted = fig12::validation_csv(&opts, Some("light-loss"));
    assert!(clean.starts_with("job_size,series,checksum\n"));
    assert_eq!(clean.lines().count(), 1 + 4, "one row per series");
    assert_eq!(clean, faulted, "retransmits altered committed updates");
}

#[test]
fn fig13_shape_quick() {
    let (times, comm) = fig13::run_matrix(&fig13::Fig13Opts::quick(), 256);
    // Headline: nonblocking ≈ 50% faster at the smallest job size.
    let b = times.cell("4", NEW).unwrap();
    let nb = times.cell("4", NB).unwrap();
    assert!(nb < 0.65 * b, "NB {nb} vs blocking {b}");
    // Communication share rises with job size for the blocking series...
    assert!(comm.cell("16", MV).unwrap() >= comm.cell("4", MV).unwrap() - 1.0);
    // ...and the blocking series spends ~half its time waiting (Late
    // Complete), while nonblocking stays low at small scale.
    assert!(comm.cell("4", NEW).unwrap() > 40.0);
    assert!(comm.cell("4", NB).unwrap() < 20.0);
}

#[test]
fn rewrite_apps_shape() {
    use mpisim_bench::rewrite_apps;
    // run() itself asserts per-row soundness (E-clean both sides, clean
    // runs, blocked-steps reduction when changed, no virtual-time
    // regression); the shape test pins the figure's story.
    let deltas = rewrite_apps::run(true);
    let t = rewrite_apps::table(&deltas);
    assert_eq!(t.rows.len(), 5, "one row per application kernel");
    for app in ["halo", "stencil2d", "lu", "bank"] {
        let before = t.cell(app, "blocked_steps").unwrap();
        let after = t.cell(app, "blocked_steps_rw").unwrap();
        assert!(after < before, "{app}: {before} -> {after}");
        assert!(
            t.cell(app, "virt_us_rw").unwrap() <= t.cell(app, "virt_us").unwrap(),
            "{app}: virtual time regressed"
        );
        let applied = t.cell(app, "relaxed").unwrap()
            + t.cell(app, "elided").unwrap()
            + t.cell(app, "shrunk").unwrap();
        assert!(applied > 0.0, "{app}: no rewrites applied");
    }
    // The contended exclusive-lock workload is the deliberate negative
    // row: every relaxation vetoed, zero delta.
    assert_eq!(t.cell("transactions", "relaxed").unwrap(), 0.0);
    assert!(t.cell("transactions", "skipped").unwrap() > 0.0);
    assert_eq!(
        t.cell("transactions", "blocked_steps").unwrap(),
        t.cell("transactions", "blocked_steps_rw").unwrap()
    );
}

#[test]
fn rewrite_apps_committed_csv_matches_schema() {
    // The committed full-scale figure must exist and keep the harness
    // schema (one row per kernel, same columns the table emits).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/rewrite_apps.csv");
    let csv = std::fs::read_to_string(path).expect("results/rewrite_apps.csv is committed");
    let mut lines = csv.lines();
    assert_eq!(
        lines.next().unwrap(),
        "app,ranks,blocked_steps,blocked_steps_rw,blocked_reduction_pct,virt_us,virt_us_rw,\
         relaxed,elided,localized,shrunk,skipped"
    );
    let apps: Vec<&str> =
        lines.map(|l| l.split(',').next().unwrap()).collect();
    assert_eq!(apps, ["halo", "stencil2d", "lu", "transactions", "bank"]);
}
