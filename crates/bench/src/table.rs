//! Minimal result-table formatting shared by every figure harness.

use std::fmt;

/// One reproduced table/figure: named columns, labelled rows of f64 cells.
#[derive(Debug, Clone)]
pub struct Table {
    /// Figure/table title (paper reference included).
    pub title: String,
    /// Label of the row-key column.
    pub row_key: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows: (label, one value per column). `NaN` renders as "-".
    pub rows: Vec<(String, Vec<f64>)>,
    /// Unit note appended to the title.
    pub unit: String,
}

impl Table {
    /// Create an empty table.
    pub fn new(
        title: impl Into<String>,
        row_key: impl Into<String>,
        columns: Vec<String>,
        unit: impl Into<String>,
    ) -> Self {
        Table {
            title: title.into(),
            row_key: row_key.into(),
            columns,
            rows: Vec::new(),
            unit: unit.into(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), values));
    }

    /// Fetch a cell by row label and column name (tests use this).
    pub fn cell(&self, row: &str, col: &str) -> Option<f64> {
        let c = self.columns.iter().position(|x| x == col)?;
        let r = self.rows.iter().find(|(l, _)| l == row)?;
        Some(r.1[c])
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.row_key);
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (label, vals) in &self.rows {
            out.push_str(label);
            for v in vals {
                out.push(',');
                if v.is_nan() {
                    out.push('-');
                } else {
                    out.push_str(&format!("{v:.3}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} [{}] ==", self.title, self.unit)?;
        let w0 = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([self.row_key.len()])
            .max()
            .unwrap_or(8)
            + 2;
        let widths: Vec<usize> = self.columns.iter().map(|c| c.len().max(12) + 2).collect();
        write!(f, "{:<w0$}", self.row_key)?;
        for (c, w) in self.columns.iter().zip(&widths) {
            write!(f, "{c:>w$}")?;
        }
        writeln!(f)?;
        for (label, vals) in &self.rows {
            write!(f, "{label:<w0$}")?;
            for (v, w) in vals.iter().zip(&widths) {
                if v.is_nan() {
                    write!(f, "{:>w$}", "-")?;
                } else if *v >= 1000.0 {
                    write!(f, "{:>w$.1}", v)?;
                } else {
                    write!(f, "{:>w$.3}", v)?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut t = Table::new(
            "Fig X",
            "size",
            vec!["a".into(), "b".into()],
            "us",
        );
        t.push("4B", vec![1.0, 2.0]);
        t.push("1MB", vec![340.0, f64::NAN]);
        assert_eq!(t.cell("4B", "b"), Some(2.0));
        assert_eq!(t.cell("1MB", "a"), Some(340.0));
        assert!(t.cell("1MB", "b").unwrap().is_nan());
        assert!(t.cell("2B", "a").is_none());
        let csv = t.to_csv();
        assert!(csv.starts_with("size,a,b\n"));
        assert!(csv.contains("1MB,340.000,-"));
        let disp = format!("{t}");
        assert!(disp.contains("Fig X"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_rejected() {
        let mut t = Table::new("t", "k", vec!["a".into()], "us");
        t.push("r", vec![1.0, 2.0]);
    }
}
