//! Fig 12 — dynamic unstructured massive transactions: throughput vs job
//! size for the four series (MVAPICH, New, New nonblocking, New
//! nonblocking + A_A_A_R).
//!
//! The harness can replay the whole figure on a faulty network
//! ([`run_with`] with a named [`mpisim_net::FaultPlan`], reliability
//! sublayer armed). Throughput then shifts — retransmits cost virtual
//! time — but the **checksum-validation CSV** ([`validation_csv`]) must
//! stay byte-identical to the fault-free run's: loss and duplication may
//! never change a single committed update.

use mpisim_apps::{expected_checksum, run_transactions, TxConfig, TxMode};
use mpisim_core::{JobConfig, SyncStrategy};
use mpisim_net::FaultPlan;

use crate::table::Table;

/// Harness scale.
#[derive(Clone, Debug)]
pub struct Fig12Opts {
    /// Job sizes (ranks). The paper uses 64, 128, 256, 512.
    pub job_sizes: Vec<usize>,
    /// Transactions per rank.
    pub txs_per_rank: usize,
    /// Sliding-window depth for the nonblocking series.
    pub max_inflight: usize,
    /// Ranks per node (the paper's cluster has 16 cores/node).
    pub cores_per_node: usize,
}

impl Default for Fig12Opts {
    fn default() -> Self {
        Fig12Opts {
            job_sizes: vec![64, 128, 256, 512],
            txs_per_rank: 200,
            max_inflight: 16,
            cores_per_node: 16,
        }
    }
}

impl Fig12Opts {
    /// A fast configuration for tests/CI.
    pub fn quick() -> Self {
        Fig12Opts {
            job_sizes: vec![8, 16, 32],
            txs_per_rank: 50,
            max_inflight: 8,
            cores_per_node: 4,
        }
    }
}

/// The four series of Fig 12.
fn series() -> Vec<(&'static str, SyncStrategy, TxMode, bool)> {
    vec![
        ("MVAPICH", SyncStrategy::LazyBaseline, TxMode::Blocking, false),
        ("New", SyncStrategy::Redesigned, TxMode::Blocking, false),
        (
            "New nonblocking",
            SyncStrategy::Redesigned,
            TxMode::Nonblocking { max_inflight: 0 }, // filled per-opts below
            false,
        ),
        (
            "New nonblocking + A_A_A_R",
            SyncStrategy::Redesigned,
            TxMode::Nonblocking { max_inflight: 0 },
            true,
        ),
    ]
}

/// Run the figure: throughput (thousands of transactions per second of
/// virtual time) per job size and series. Every run's checksum is
/// validated — an out-of-order engine must not lose a single update.
pub fn run(opts: &Fig12Opts) -> Table {
    run_with(opts, None).0
}

/// Run the figure, optionally on a named faulty network (reliability
/// sublayer armed). Returns the throughput table plus the
/// checksum-validation CSV — the latter is fault-invariant by
/// construction and the `--faults` CLI mode compares it byte-for-byte
/// against the fault-free run's.
pub fn run_with(opts: &Fig12Opts, faults: Option<&str>) -> (Table, String) {
    let title = match faults {
        Some(plan) => format!(
            "Fig 12 — massive unstructured atomic transactions (fault plan {plan})"
        ),
        None => "Fig 12 — massive unstructured atomic transactions".to_string(),
    };
    let mut t = Table::new(
        title,
        "job size",
        series().iter().map(|s| s.0.to_string()).collect(),
        "thousands of transactions / s",
    );
    let mut csv = String::from("job_size,series,checksum\n");
    for &n in &opts.job_sizes {
        let mut row = Vec::new();
        for (name, strategy, mode, aaar) in series() {
            let mode = match mode {
                TxMode::Nonblocking { .. } => TxMode::Nonblocking {
                    max_inflight: opts.max_inflight,
                },
                m => m,
            };
            let cfg = TxConfig {
                txs_per_rank: opts.txs_per_rank,
                payload: 64,
                slots: 256,
                mode,
                aaar,
                think_time: mpisim_sim::SimTime::ZERO,
                dist: mpisim_apps::TargetDist::Uniform,
            };
            let mut job = JobConfig::new(n).with_strategy(strategy);
            job.cores_per_node = opts.cores_per_node;
            if let Some(plan) = faults {
                // Same plan seed for every series at one job size, so a
                // checksum difference can only come from the engine
                // mishandling the faults, never from plan sampling.
                job = job.with_reliability();
                job.net.faults = Some(
                    FaultPlan::by_name(plan, 0xF1612 + n as u64)
                        .unwrap_or_else(|| panic!("unknown fault plan {plan:?}")),
                );
            }
            let res = run_transactions(job, cfg.clone()).expect("transaction run failed");
            assert_eq!(
                res.checksum,
                expected_checksum(n, &cfg),
                "lost updates in series with strategy {strategy:?} aaar={aaar}"
            );
            csv.push_str(&format!("{n},{name},{}\n", res.checksum));
            row.push(res.tx_per_sec / 1e3);
        }
        t.push(format!("{n}"), row);
    }
    (t, csv)
}

/// The checksum-validation CSV of one sweep: one row per (job size,
/// series) with the exact committed-update checksum.
pub fn validation_csv(opts: &Fig12Opts, faults: Option<&str>) -> String {
    run_with(opts, faults).1
}
