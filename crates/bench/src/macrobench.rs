//! Macro-benchmarks for the work-list progress engine, and the PR-over-PR
//! perf trajectory file they feed.
//!
//! Unlike the figure harnesses (which report *virtual* time on the
//! calibrated cluster model), these benchmarks measure **host wall-clock
//! per RMA operation** — the cost of the engine itself: sweep dispatch,
//! FIFO drains, epoch matching, request bookkeeping. Three workloads
//! cover the three epoch disciplines the sweep serves:
//!
//! * `halo_fence` — fence-heavy 1-D halo exchange (active target,
//!   collective epochs; stresses step 2/3 issue + completion);
//! * `gats_pipeline` — back-to-back nonblocking GATS epochs toward a
//!   ring neighbour (stresses §VII.A deferral and steps 3/7 activation);
//! * `lock_all_contention` — every rank repeatedly `lock_all`s the same
//!   window and accumulates into shared slots (passive target; stresses
//!   step 5 FIFO drains and step 6 grant pumping).
//!
//! [`trajectory_json`] renders the results, together with the engine's
//! work counters, as `BENCH_<pr>.json` at the repo root so successive
//! PRs accumulate a comparable perf baseline.

use std::time::Instant;

use mpisim_core::{
    run_job, Datatype, EngineStats, Group, JobConfig, LockKind, Rank, ReduceOp,
};
use mpisim_sim::SimTime;

/// One macro-benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Workload name (JSON key).
    pub name: &'static str,
    /// Ranks in the simulated job.
    pub ranks: usize,
    /// RMA data operations the workload source issues (puts/accumulates).
    pub ops: u64,
    /// Host wall-clock for the whole `run_job`, nanoseconds.
    pub wall_ns: u128,
    /// Final virtual time of the job, nanoseconds.
    pub virt_ns: u64,
    /// Process peak resident set (`VmHWM`) right after the run, KiB;
    /// 0 where `/proc/self/status` is unavailable. The kernel's
    /// high-water mark is monotonic over the process, so within a suite
    /// it is meaningful for the *ascending* ranks sweep (each point's
    /// reading bounds that scale's footprint) and merely an upper bound
    /// elsewhere.
    pub peak_rss_kb: u64,
    /// Engine work counters accumulated over the run.
    pub engine: EngineStats,
}

/// Process peak resident set (`VmHWM`) in KiB from `/proc/self/status`,
/// or 0 when the file or field is unavailable (non-Linux hosts).
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

impl BenchResult {
    /// Host nanoseconds of engine+simulation work per RMA operation.
    pub fn ns_per_op(&self) -> f64 {
        self.wall_ns as f64 / self.ops as f64
    }
}

fn measure<F>(name: &'static str, ranks: usize, ops: u64, body: F) -> BenchResult
where
    F: Fn(&mut mpisim_core::RankEnv) + Send + Sync + 'static,
{
    measure_cfg(name, JobConfig::new(ranks), ranks, ops, body)
}

fn measure_cfg<F>(
    name: &'static str,
    cfg: JobConfig,
    ranks: usize,
    ops: u64,
    body: F,
) -> BenchResult
where
    F: Fn(&mut mpisim_core::RankEnv) + Send + Sync + 'static,
{
    let t0 = Instant::now();
    let report = run_job(cfg, body).expect(name);
    let wall_ns = t0.elapsed().as_nanos();
    assert_eq!(report.live_requests, 0, "{name}: leaked requests");
    assert!(report.is_clean(), "{name}: degradations: {:?}", report.degradations);
    BenchResult {
        name,
        ranks,
        ops,
        wall_ns,
        virt_ns: report.final_time.as_nanos(),
        peak_rss_kb: peak_rss_kb(),
        engine: report.engine,
    }
}

/// The halo-exchange workload body, shared by the three `halo_fence*`
/// placements.
fn halo_body(iters: usize) -> impl Fn(&mut mpisim_core::RankEnv) + Send + Sync + 'static {
    move |env| {
        let win = env.win_allocate(64).unwrap();
        let me = env.rank().idx();
        let n = env.n_ranks();
        let left = Rank((me + n - 1) % n);
        let right = Rank((me + 1) % n);
        env.fence(win).unwrap();
        for i in 0..iters {
            env.put(win, left, 8, &(i as u64).to_le_bytes()).unwrap();
            env.put(win, right, 0, &(i as u64).to_le_bytes()).unwrap();
            env.fence(win).unwrap();
        }
        env.win_free(win).unwrap();
    }
}

/// Fence-heavy 1-D halo exchange: each iteration puts a boundary cell to
/// both ring neighbours and closes with a blocking fence.
pub fn halo_fence(n_ranks: usize, iters: usize) -> BenchResult {
    let ops = (n_ranks * iters * 2) as u64;
    measure("halo_fence", n_ranks, ops, halo_body(iters))
}

/// The same halo exchange with one rank per node: every message crosses
/// the interconnect. Baseline for [`halo_fence_reliable`].
pub fn halo_fence_internode(n_ranks: usize, iters: usize) -> BenchResult {
    let ops = (n_ranks * iters * 2) as u64;
    measure_cfg(
        "halo_fence_internode",
        JobConfig::all_internode(n_ranks),
        n_ranks,
        ops,
        halo_body(iters),
    )
}

/// Degraded-mode overhead probe: the internode halo exchange with the
/// ack/retransmit reliability sublayer armed on a *fault-free* network
/// (and no watchdog). The delta against [`halo_fence_internode`] is the
/// pure cost of framing, acking, and retransmit bookkeeping.
pub fn halo_fence_reliable(n_ranks: usize, iters: usize) -> BenchResult {
    let ops = (n_ranks * iters * 2) as u64;
    measure_cfg(
        "halo_fence_reliable",
        JobConfig::all_internode(n_ranks).with_reliability(),
        n_ranks,
        ops,
        halo_body(iters),
    )
}

/// Checkpointing-overhead probe: the halo exchange with the epoch-aligned
/// crash-recovery store armed at every commit (`ckpt_every = 1`) on a
/// crash-free run. The delta against [`halo_fence`] is the pure cost of
/// cutting window+ω snapshots and journaling every remote write into the
/// redo log — the price a job pays for restartability it never uses. No
/// crash is planned, so the run stays degradation-clean and the
/// `ckpt_commits`/`ckpt_bytes` counters land in the trajectory file.
pub fn halo_fence_checkpointed(n_ranks: usize, iters: usize) -> BenchResult {
    let ops = (n_ranks * iters * 2) as u64;
    measure_cfg(
        "halo_fence_checkpointed",
        JobConfig::new(n_ranks).with_recovery(),
        n_ranks,
        ops,
        halo_body(iters),
    )
}

/// Pipelined GATS ring: every epoch opens, puts, and closes with the
/// nonblocking variants; completion is only collected at the end, so the
/// engine carries a deep deferred-epoch queue (§VII.A).
pub fn gats_pipeline(n_ranks: usize, epochs: usize) -> BenchResult {
    let ops = (n_ranks * epochs) as u64;
    measure("gats_pipeline", n_ranks, ops, move |env| {
        // Every rank runs interleaved exposure and access epochs on the
        // same window; the reorder flags (§VI.B) let them progress
        // concurrently — without them the ring deadlocks on the E_A
        // serialization rule.
        let win = env
            .win_allocate_with(64, mpisim_core::WinInfo::all_reorder())
            .unwrap();
        let me = env.rank().idx();
        let n = env.n_ranks();
        let next = Rank((me + 1) % n);
        let prev = Rank((me + n - 1) % n);
        let mut pending = Vec::new();
        for e in 0..epochs {
            pending.push(env.ipost(win, Group::single(prev)).unwrap());
            pending.push(env.istart(win, Group::single(next)).unwrap());
            env.put(win, next, 0, &(e as u64).to_le_bytes()).unwrap();
            pending.push(env.icomplete(win).unwrap());
            pending.push(env.iwait(win).unwrap());
            env.compute(SimTime::from_nanos(200));
        }
        env.wait_all(pending).unwrap();
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
}

/// `lock_all` contention storm: every rank repeatedly opens a nonblocking
/// shared-all epoch over the same window and Sum-accumulates into slots
/// spread across all ranks.
pub fn lock_all_contention(n_ranks: usize, rounds: usize, accs: usize) -> BenchResult {
    let ops = (n_ranks * rounds * accs) as u64;
    measure("lock_all_contention", n_ranks, ops, move |env| {
        let win = env.win_allocate(256).unwrap();
        env.barrier().unwrap();
        let me = env.rank().idx();
        let n = env.n_ranks();
        let mut pending = Vec::new();
        for r in 0..rounds {
            pending.push(env.ilock_all(win).unwrap());
            for a in 0..accs {
                let target = Rank((me + a + 1) % n);
                let slot = (me + a + r) % (256 / 8);
                env.accumulate(
                    win,
                    target,
                    slot * 8,
                    Datatype::U64,
                    ReduceOp::Sum,
                    &1u64.to_le_bytes(),
                )
                .unwrap();
            }
            pending.push(env.iunlock_all(win).unwrap());
        }
        env.wait_all(pending).unwrap();
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
}

/// Scaling throughput probe: a neighbour lock-epoch workload run at one
/// point of the 8/64/512/4096 ranks sweep. Every rank drives `rounds`
/// fully nonblocking exclusive-lock epochs at its right ring neighbour
/// (ilock → put → iunlock), collecting completion only at the end, so
/// per-rank work is constant and wall-clock measures how the kernel's
/// rank-execution machinery scales with job size. The sweep is what the
/// pooled-fiber executor exists for: at 4096 ranks a thread-per-rank
/// kernel would burn thousands of OS threads and stacks, while pooled
/// execution keeps the footprint in the `peak_rss_kb` column.
pub fn ranks_sweep(n_ranks: usize, rounds: usize) -> BenchResult {
    let name = match n_ranks {
        8 => "ranks_sweep_8",
        64 => "ranks_sweep_64",
        512 => "ranks_sweep_512",
        4096 => "ranks_sweep_4096",
        _ => "ranks_sweep",
    };
    let ops = (n_ranks * rounds) as u64;
    measure_cfg(name, JobConfig::new(n_ranks), n_ranks, ops, move |env| {
        let win = env.win_allocate(64).unwrap();
        env.barrier().unwrap();
        let me = env.rank().idx();
        let n = env.n_ranks();
        let right = Rank((me + 1) % n);
        let mut pending = Vec::new();
        for r in 0..rounds {
            pending.push(env.ilock(win, right, LockKind::Exclusive).unwrap());
            env.put(win, right, 8 * (r % 8), &(r as u64).to_le_bytes()).unwrap();
            pending.push(env.iunlock(win, right).unwrap());
            env.compute(SimTime::from_nanos(120));
        }
        env.wait_all(pending).unwrap();
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
}

/// The full ranks sweep, ascending so each point's `VmHWM` reading
/// bounds that scale's footprint. `short` keeps the small end cheap but
/// still touches the 4096-rank point — the CI scale smoke must prove
/// thousands of ranks fit the budget, not just that 8 do.
pub fn ranks_sweep_suite(short: bool) -> Vec<BenchResult> {
    if short {
        vec![ranks_sweep(8, 8), ranks_sweep(64, 4), ranks_sweep(4096, 2)]
    } else {
        vec![
            ranks_sweep(8, 64),
            ranks_sweep(64, 32),
            ranks_sweep(512, 8),
            ranks_sweep(4096, 2),
        ]
    }
}

/// Static-analyzer throughput probe: generate every conformance family's
/// programs, lower each under both close modes, add the full negative
/// corpus, and run the whole-job deadlock/progress analyzer over every
/// IR program. `ops` counts analyzed programs, so `ns_per_op` is the
/// analyzer's wall-time per generated program; the engine counters stay
/// zero — nothing is simulated.
pub fn analyzer_ir_sweep(programs: u64, corpus_seeds: u64) -> BenchResult {
    use mpisim_analyze::{analyze, generate_negative, NegFamily};
    use mpisim_check::{generate, lower, Family};
    let mut irs = Vec::new();
    for family in Family::ALL {
        for idx in 0..programs {
            let p = generate(family, idx);
            for nonblocking in [false, true] {
                irs.push(lower(&p, nonblocking));
            }
        }
    }
    for family in NegFamily::ALL {
        for seed in 0..corpus_seeds {
            irs.push(generate_negative(family, seed).program);
        }
    }
    let ops = irs.len() as u64;
    let t0 = Instant::now();
    let mut diags = 0u64;
    for ir in &irs {
        diags += analyze(ir).len() as u64;
    }
    let wall_ns = t0.elapsed().as_nanos();
    // Every corpus program carries at least one planted defect.
    assert!(
        diags >= NegFamily::ALL.len() as u64 * corpus_seeds,
        "analyzer_ir_sweep: corpus programs went unflagged"
    );
    BenchResult {
        name: "analyzer_ir_sweep",
        ranks: 0,
        ops,
        wall_ns,
        virt_ns: 0,
        peak_rss_kb: peak_rss_kb(),
        engine: EngineStats::default(),
    }
}

/// Slack-pass throughput probe: generate every conformance family's
/// programs under the blocking lowering (the shape with slack), then run
/// the full classify → rewrite fixpoint loop over each. `ops` counts
/// processed programs, so `ns_per_op` is the analyzer+rewriter wall-time
/// per program; nothing is simulated.
pub fn slack_sweep(programs: u64) -> BenchResult {
    use mpisim_analyze::{analyze_slack, rewrite};
    use mpisim_check::{generate, lower, Family};
    let mut irs = Vec::new();
    for family in Family::ALL {
        for idx in 0..programs {
            irs.push(lower(&generate(family, idx), false));
        }
    }
    let ops = irs.len() as u64;
    let t0 = Instant::now();
    let mut fired = 0u64;
    for ir in &irs {
        let findings = analyze_slack(ir).findings.len();
        let (_, rep) = rewrite(ir);
        if rep.changed() {
            fired += 1;
        }
        assert!(
            findings > 0,
            "slack_sweep: a lowered program with no sync points at all"
        );
    }
    let wall_ns = t0.elapsed().as_nanos();
    // The blocking lowering is the over-synchronized shape by
    // construction; the rewriter must find work in most of it.
    assert!(fired * 2 >= ops, "slack_sweep: rewriter fired on {fired}/{ops}");
    BenchResult {
        name: "slack_sweep",
        ranks: 0,
        ops,
        wall_ns,
        virt_ns: 0,
        peak_rss_kb: peak_rss_kb(),
        engine: EngineStats::default(),
    }
}

/// Build the IR twin of [`halo_fence`]: the same ring halo exchange
/// expressed as an analyzable [`mpisim_analyze::IrProgram`], all-blocking
/// closes.
fn halo_ir(n_ranks: usize, iters: usize) -> mpisim_analyze::IrProgram {
    use mpisim_analyze::Stmt;
    let mut p = mpisim_analyze::IrProgram::new(n_ranks, 64);
    for me in 0..n_ranks {
        let left = (me + n_ranks - 1) % n_ranks;
        let right = (me + 1) % n_ranks;
        let stmts = &mut p.ranks[me];
        stmts.push(Stmt::Fence { win: 0, close: mpisim_analyze::Close::Blocking });
        for i in 0..iters {
            stmts.push(Stmt::Put { win: 0, target: left, disp: 8, len: 8 });
            stmts.push(Stmt::Put { win: 0, target: right, disp: (i % 2) * 24, len: 8 });
            stmts.push(Stmt::Fence { win: 0, close: mpisim_analyze::Close::Blocking });
        }
    }
    p
}

/// Execute an IR program under the engine and wrap the report as a
/// [`BenchResult`]. Deliberately not routed through `measure_cfg`: the
/// rewritten variants run the exact statement list the rewriter
/// produced, so the workload body is the IR interpreter itself.
fn measure_ir(name: &'static str, p: &mpisim_analyze::IrProgram, ops: u64) -> BenchResult {
    let t0 = Instant::now();
    let report = mpisim_check::exec_ir(p, false, 7).expect(name);
    let wall_ns = t0.elapsed().as_nanos();
    assert!(report.is_clean(), "{name}: degradations: {:?}", report.degradations);
    BenchResult {
        name,
        ranks: p.n_ranks,
        ops,
        wall_ns,
        virt_ns: report.final_time.as_nanos(),
        peak_rss_kb: peak_rss_kb(),
        engine: report.engine,
    }
}

/// The fence-halo exchange driven through the IR interpreter, blocking
/// closes throughout. Baseline for [`halo_fence_ir_relaxed`]; the pair's
/// `sync_blocked_steps` delta is the engine-measured payoff of the
/// slack rewriter on a real workload shape.
pub fn halo_fence_ir(n_ranks: usize, iters: usize) -> BenchResult {
    let ops = (n_ranks * iters * 2) as u64;
    measure_ir("halo_fence_ir", &halo_ir(n_ranks, iters), ops)
}

/// [`halo_fence_ir`] after the slack rewriter's sound fixpoint: relaxed
/// closes plus rewriter-planted waits, same data movement.
pub fn halo_fence_ir_relaxed(n_ranks: usize, iters: usize) -> BenchResult {
    let p = halo_ir(n_ranks, iters);
    assert!(mpisim_analyze::analyze(&p).is_empty(), "halo IR must start E-clean");
    let (rw, rep) = mpisim_analyze::rewrite(&p);
    assert!(rep.changed(), "rewriter found no slack in the blocking halo");
    assert!(mpisim_analyze::analyze(&rw).is_empty(), "rewritten halo must stay E-clean");
    let ops = (n_ranks * iters * 2) as u64;
    measure_ir("halo_fence_ir_relaxed", &rw, ops)
}

/// Apply the sound slack rewriter to an application IR twin, asserting
/// it fires and both sides stay E-clean — the shared front half of the
/// `*_ir_relaxed` trajectory points below.
fn rewritten_twin(name: &str, p: &mpisim_analyze::IrProgram) -> mpisim_analyze::IrProgram {
    assert!(mpisim_analyze::analyze(p).is_empty(), "{name}: twin must start E-clean");
    let (rw, rep) = mpisim_analyze::rewrite(p);
    assert!(rep.changed(), "{name}: rewriter found no slack");
    assert!(mpisim_analyze::analyze(&rw).is_empty(), "{name}: rewritten twin must stay E-clean");
    rw
}

/// The LU panel broadcast's IR twin (one GATS access epoch per panel,
/// owner puts toward everyone else), blocking closes. Baseline for
/// [`lu_gats_ir_relaxed`].
pub fn lu_gats_ir(n_ranks: usize, panels: usize) -> BenchResult {
    let ops = (panels * (n_ranks - 1)) as u64;
    measure_ir("lu_gats_ir", &mpisim_apps::ir_models::lu_ir(n_ranks, panels), ops)
}

/// [`lu_gats_ir`] after the sound slack rewrite: nonblocking panel
/// closes pipeline across panels.
pub fn lu_gats_ir_relaxed(n_ranks: usize, panels: usize) -> BenchResult {
    let rw = rewritten_twin("lu_gats_ir", &mpisim_apps::ir_models::lu_ir(n_ranks, panels));
    let ops = (panels * (n_ranks - 1)) as u64;
    measure_ir("lu_gats_ir_relaxed", &rw, ops)
}

/// The bank kernel's IR twin (one `lock_all` epoch per rank, per-transfer
/// balance read + credit + flush), blocking closes. Baseline for
/// [`bank_lockall_ir_relaxed`].
pub fn bank_lockall_ir(n_ranks: usize, transfers: usize) -> BenchResult {
    let ops = (n_ranks * transfers * 2) as u64;
    measure_ir("bank_lockall_ir", &mpisim_apps::ir_models::bank_ir(n_ranks, transfers), ops)
}

/// [`bank_lockall_ir`] after the sound slack rewrite: the rewriter's
/// payoff here is flush *elision* — per-transfer blocking flushes whose
/// guarantee a later flush of the same target already covers.
pub fn bank_lockall_ir_relaxed(n_ranks: usize, transfers: usize) -> BenchResult {
    let rw = rewritten_twin("bank_lockall_ir", &mpisim_apps::ir_models::bank_ir(n_ranks, transfers));
    let ops = (n_ranks * transfers * 2) as u64;
    measure_ir("bank_lockall_ir_relaxed", &rw, ops)
}

/// Run the full trajectory suite. `short` uses reduced scales for CI
/// smoke runs; the numbers are still comparable across PRs as long as
/// the mode matches.
pub fn run_suite(short: bool) -> Vec<BenchResult> {
    let mut results = core_suite(short);
    // Ranks sweep last and ascending: the VmHWM high-water mark is
    // process-monotonic, so the big points must come after everything
    // whose footprint they should dominate.
    results.extend(ranks_sweep_suite(short));
    results
}

/// Every workload except the ranks sweep. Split out so the debug-mode
/// unit tests can exercise the suite without paying for the 4096-rank
/// point (which first-touches the engine's O(ranks²) counter state and
/// belongs to the release-mode CI scale smoke).
fn core_suite(short: bool) -> Vec<BenchResult> {
    if short {
        vec![
            halo_fence(4, 16),
            gats_pipeline(4, 16),
            lock_all_contention(4, 8, 4),
            halo_fence_internode(4, 16),
            halo_fence_reliable(4, 16),
            halo_fence_checkpointed(4, 16),
            analyzer_ir_sweep(4, 16),
            slack_sweep(4),
            halo_fence_ir(4, 8),
            halo_fence_ir_relaxed(4, 8),
            lu_gats_ir(4, 8),
            lu_gats_ir_relaxed(4, 8),
            bank_lockall_ir(4, 8),
            bank_lockall_ir_relaxed(4, 8),
        ]
    } else {
        vec![
            halo_fence(8, 128),
            gats_pipeline(8, 96),
            lock_all_contention(8, 48, 8),
            halo_fence_internode(8, 128),
            halo_fence_reliable(8, 128),
            halo_fence_checkpointed(8, 128),
            analyzer_ir_sweep(16, 64),
            slack_sweep(16),
            halo_fence_ir(8, 32),
            halo_fence_ir_relaxed(8, 32),
            lu_gats_ir(8, 24),
            lu_gats_ir_relaxed(8, 24),
            bank_lockall_ir(8, 16),
            bank_lockall_ir_relaxed(8, 16),
        ]
    }
}

fn json_stats(e: &EngineStats, indent: &str) -> String {
    let steps = e
        .step_runs
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{i}\"sweeps\": {}, \"step_runs\": [{steps}],\n\
         {i}\"notices_drained\": {}, \"issue_scans\": {}, \"ops_issued\": {},\n\
         {i}\"completion_checks\": {}, \"activation_scans\": {},\n\
         {i}\"fifo_packets\": {}, \"fifo_drained\": {}, \"fifo_decode_errors\": {},\n\
         {i}\"notices_batched\": {}, \"acks_coalesced\": {},\n\
         {i}\"unlocks_applied\": {}, \"grant_pumps\": {},\n\
         {i}\"epochs_opened\": {}, \"epochs_deferred\": {}, \"epochs_completed\": {},\n\
         {i}\"rel_frames_sent\": {}, \"rel_delivered\": {}, \"rel_acks_sent\": {},\n\
         {i}\"rel_retransmits\": {}, \"rel_dups_dropped\": {}, \"epochs_cancelled\": {},\n\
         {i}\"ckpt_commits\": {}, \"ckpt_bytes\": {}, \"recoveries\": {},\n\
         {i}\"sync_blocked_steps\": {}, \"sync_blocked_ns\": {}",
        e.sweeps,
        e.notices_drained,
        e.issue_scans,
        e.ops_issued,
        e.completion_checks,
        e.activation_scans,
        e.fifo_packets,
        e.fifo_drained,
        e.fifo_decode_errors,
        e.notices_batched,
        e.acks_coalesced,
        e.unlocks_applied,
        e.grant_pumps,
        e.epochs_opened,
        e.epochs_deferred,
        e.epochs_completed,
        e.rel_frames_sent,
        e.rel_delivered,
        e.rel_acks_sent,
        e.rel_retransmits,
        e.rel_dups_dropped,
        e.epochs_cancelled,
        e.ckpt_commits,
        e.ckpt_bytes,
        e.recoveries,
        e.sync_blocked_steps,
        e.sync_blocked_ns,
        i = indent,
    )
}

/// Render the trajectory file contents (hand-formatted JSON; the
/// workspace is offline and carries no serde).
pub fn trajectory_json(pr: u32, short: bool, results: &[BenchResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"mpisim-bench-trajectory-v1\",\n");
    out.push_str(&format!("  \"pr\": {pr},\n"));
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if short { "short" } else { "full" }
    ));
    out.push_str("  \"benchmarks\": [\n");
    for (k, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"ranks\": {},\n", r.ranks));
        out.push_str(&format!("      \"ops\": {},\n", r.ops));
        out.push_str(&format!("      \"wall_ns\": {},\n", r.wall_ns));
        out.push_str(&format!("      \"ns_per_op\": {:.1},\n", r.ns_per_op()));
        out.push_str(&format!("      \"virtual_ns\": {},\n", r.virt_ns));
        out.push_str(&format!("      \"peak_rss_kb\": {},\n", r.peak_rss_kb));
        out.push_str("      \"engine\": {\n");
        out.push_str(&json_stats(&r.engine, "        "));
        out.push_str("\n      }\n");
        out.push_str(if k + 1 == results.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyzer_sweep_counts_programs() {
        let r = analyzer_ir_sweep(1, 2);
        // 5 conformance families x 1 program x 2 close modes
        // + 10 corpus families x 2 seeds.
        assert_eq!(r.ops, 5 * 2 + 10 * 2);
        assert!(r.wall_ns > 0);
    }

    #[test]
    fn suite_runs_and_counters_balance() {
        // `core_suite`, not `run_suite`: the 4096-rank sweep point is a
        // release-mode CI job, not a debug unit test (see `core_suite`).
        let results = core_suite(true);
        // The rewriter's payoff must be visible in the engine's own
        // counter: the relaxed IR halo blocks the host strictly less.
        let blocked = |name: &str| {
            results
                .iter()
                .find(|r| r.name == name)
                .map(|r| r.engine.sync_blocked_steps)
                .unwrap()
        };
        for pair in ["halo_fence_ir", "lu_gats_ir", "bank_lockall_ir"] {
            let relaxed = format!("{pair}_relaxed");
            assert!(
                blocked(&relaxed) < blocked(pair),
                "{relaxed} did not reduce sync_blocked_steps: {} vs {}",
                blocked(&relaxed),
                blocked(pair)
            );
        }
        for r in results {
            assert!(r.ops > 0);
            assert!(r.wall_ns > 0);
            if r.name == "analyzer_ir_sweep" || r.name == "slack_sweep" {
                // Pure static analysis: no simulation, no engine work.
                continue;
            }
            if r.name.ends_with("_ir") || r.name.ends_with("_ir_relaxed") {
                // IR-interpreter runs: ops counts the source program's
                // data operations; the engine-level balance checks
                // below still apply.
                assert_eq!(r.engine.fifo_decode_errors, 0, "{}", r.name);
                continue;
            }
            assert_eq!(
                r.engine.fifo_packets, r.engine.fifo_drained,
                "{}: pushed != drained",
                r.name
            );
            assert_eq!(r.engine.fifo_decode_errors, 0, "{}", r.name);
            // Every workload issues its ops through the engine.
            assert!(r.engine.ops_issued >= r.ops, "{}", r.name);
            if r.name == "halo_fence_checkpointed" {
                // The stable store must actually cut checkpoints at every
                // commit and journal the halo's remote writes — and a
                // crash-free run must never restart anything.
                assert!(r.engine.ckpt_commits > 0, "{}", r.name);
                assert!(r.engine.ckpt_bytes > 0, "{}", r.name);
                assert_eq!(r.engine.recoveries, 0, "{}: spurious restart", r.name);
            }
            if r.name == "halo_fence_reliable" {
                // The sublayer must actually frame the internode traffic
                // and reach channel quiescence on the fault-free network.
                assert!(r.engine.rel_frames_sent > 0, "{}", r.name);
                assert_eq!(
                    r.engine.rel_delivered, r.engine.rel_frames_sent,
                    "{}: sublayer not quiescent",
                    r.name
                );
                assert_eq!(r.engine.rel_retransmits, 0, "{}: spurious retransmits", r.name);
            }
        }
    }

    #[test]
    fn trajectory_json_is_well_formed() {
        let results = vec![halo_fence(4, 4), lock_all_contention(4, 2, 2)];
        let j = trajectory_json(3, true, &results);
        assert!(j.starts_with("{\n"));
        assert!(j.ends_with("}\n"));
        assert_eq!(j.matches("\"name\"").count(), 2);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"schema\": \"mpisim-bench-trajectory-v1\""));
        assert!(j.contains("\"step_runs\": ["));
        assert!(j.contains("\"ckpt_commits\""));
        assert!(j.contains("\"recoveries\""));
        assert_eq!(j.matches("\"peak_rss_kb\"").count(), 2);
    }

    #[test]
    fn ranks_sweep_reports_footprint_and_balances() {
        let r = ranks_sweep(8, 4);
        assert_eq!(r.ranks, 8);
        assert_eq!(r.ops, 32);
        assert!(r.peak_rss_kb > 0, "VmHWM must be readable on the CI host");
        assert_eq!(r.engine.fifo_packets, r.engine.fifo_drained);
        assert!(r.engine.ops_issued >= r.ops);
    }
}
