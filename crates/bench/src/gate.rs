//! The perf-trajectory regression gate (`bench_gate` binary).
//!
//! Diffs the current `BENCH_<pr>.json` against the previous PR's file
//! and fails on a >threshold ns/op regression **at equal engine
//! counters**. Equal counters mean the engine did byte-identical work,
//! so a wall-clock regression is pure host overhead — exactly the class
//! of regression PR 5 shipped and PR 6 clawed back. When the counters
//! differ (the engine's work changed, or the two files were produced at
//! different scales/modes) a slowdown is reported informationally but
//! does not fail the gate: wall-clock is not comparable across different
//! work.
//!
//! The workspace is offline and carries no serde, so this module brings
//! its own minimal JSON reader — sufficient for the trajectory schema
//! `trajectory_json` writes (objects, arrays, strings, numbers, bools,
//! null; no escapes beyond `\"` and `\\` are needed or supported).

use std::collections::BTreeSet;

/// A parsed JSON value. Numbers keep their raw token so counter
/// comparison is exact (the trajectory writer always emits integers the
/// same way); `as_f64` interprets them when magnitude matters.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Number, raw token preserved.
    Num(String),
    /// String (unescaped).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("JSON parse error at byte {}: {what}", self.i)
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let tok = std::str::from_utf8(&self.b[start..self.i]).unwrap().to_string();
        tok.parse::<f64>().map_err(|_| self.err("bad number"))?;
        Ok(Json::Num(tok))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    match self.b.get(self.i + 1) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.i += 2;
                }
                Some(&c) => {
                    out.push(c as char);
                    self.i += 1;
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a JSON document.
pub fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser { b: s.as_bytes(), i: 0 };
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// One benchmark row of a trajectory file.
#[derive(Debug, Clone)]
pub struct GateBench {
    /// Workload name.
    pub name: String,
    /// Host nanoseconds per RMA op.
    pub ns_per_op: f64,
    /// RMA ops the workload performed (part of workload identity: a
    /// workload whose engine counters are all zero — e.g. a pure
    /// host-side sweep — still changes scale when its op count does).
    pub ops: Option<f64>,
    /// Engine work counters, by key (scalars and the `step_runs` array
    /// alike, compared structurally).
    pub counters: Vec<(String, Json)>,
}

impl GateBench {
    fn counter(&self, key: &str) -> Option<&Json> {
        self.counters.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A parsed `BENCH_<pr>.json`.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// PR number the file was produced by.
    pub pr: u64,
    /// `"full"` or `"short"` suite scale.
    pub mode: String,
    /// The benchmark rows.
    pub benchmarks: Vec<GateBench>,
}

/// Parse a trajectory file into the comparator's model.
pub fn parse_trajectory(s: &str) -> Result<Trajectory, String> {
    let doc = parse(s)?;
    let schema = doc.get("schema").and_then(|v| match v {
        Json::Str(s) => Some(s.as_str()),
        _ => None,
    });
    if schema != Some("mpisim-bench-trajectory-v1") {
        return Err(format!("unknown trajectory schema {schema:?}"));
    }
    let pr = doc
        .get("pr")
        .and_then(|v| v.as_f64())
        .ok_or("missing 'pr'")? as u64;
    let mode = match doc.get("mode") {
        Some(Json::Str(m)) => m.clone(),
        _ => return Err("missing 'mode'".into()),
    };
    let Some(Json::Arr(rows)) = doc.get("benchmarks") else {
        return Err("missing 'benchmarks' array".into());
    };
    let mut benchmarks = Vec::new();
    for row in rows {
        let name = match row.get("name") {
            Some(Json::Str(n)) => n.clone(),
            _ => return Err("benchmark without 'name'".into()),
        };
        let ns_per_op = row
            .get("ns_per_op")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("{name}: missing 'ns_per_op'"))?;
        let ops = row.get("ops").and_then(|v| v.as_f64());
        let counters = match row.get("engine") {
            Some(Json::Obj(fields)) => fields.clone(),
            _ => return Err(format!("{name}: missing 'engine' object")),
        };
        benchmarks.push(GateBench { name, ns_per_op, ops, counters });
    }
    Ok(Trajectory { pr, mode, benchmarks })
}

/// The gate's verdict: human-readable per-benchmark lines plus the
/// subset that constitutes hard failures.
#[derive(Debug, Default)]
pub struct GateReport {
    /// One line per compared benchmark (and per structural note).
    pub lines: Vec<String>,
    /// Hard failures: >threshold regression at equal counters.
    pub failures: Vec<String>,
}

impl GateReport {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compare `current` against `baseline`.
///
/// * No baseline (first PR, or the file genuinely absent) → vacuous pass.
/// * Counters equal (every key present in **both** files has an equal
///   value; keys on one side only — schema growth — are noted, not
///   compared), op counts equal, and ns/op worse by more than
///   `threshold` (a fraction, e.g. 0.10) → hard failure.
/// * Counters or op counts unequal → informational line only: the
///   workload did different work, wall-clock is not comparable. The op
///   count matters for workloads whose engine counters are all zero
///   (pure host-side sweeps): a full-mode baseline row would otherwise
///   gate a short-mode current row of the same name.
pub fn gate(baseline: Option<&Trajectory>, current: &Trajectory, threshold: f64) -> GateReport {
    let mut rep = GateReport::default();
    let Some(base) = baseline else {
        rep.lines.push("no baseline trajectory: gate passes vacuously".into());
        return rep;
    };
    if base.mode != current.mode {
        rep.lines.push(format!(
            "mode mismatch (baseline '{}' vs current '{}'): scales differ, counters will disagree",
            base.mode, current.mode
        ));
    }
    for cur in &current.benchmarks {
        let Some(prev) = base.benchmarks.iter().find(|b| b.name == cur.name) else {
            rep.lines.push(format!("{}: new benchmark (no baseline row)", cur.name));
            continue;
        };
        let base_keys: BTreeSet<&str> = prev.counters.iter().map(|(k, _)| k.as_str()).collect();
        let cur_keys: BTreeSet<&str> = cur.counters.iter().map(|(k, _)| k.as_str()).collect();
        let shared: Vec<&str> = base_keys.intersection(&cur_keys).copied().collect();
        let one_sided: Vec<&str> = base_keys.symmetric_difference(&cur_keys).copied().collect();
        let ops_equal = match (prev.ops, cur.ops) {
            (Some(a), Some(b)) => a == b,
            _ => true,
        };
        let equal = ops_equal && shared.iter().all(|k| prev.counter(k) == cur.counter(k));
        let ratio = cur.ns_per_op / prev.ns_per_op;
        let pct = (ratio - 1.0) * 100.0;
        let mut line = format!(
            "{}: {:.1} -> {:.1} ns/op ({:+.1}%), counters {}",
            cur.name,
            prev.ns_per_op,
            cur.ns_per_op,
            pct,
            if equal { "equal" } else { "UNEQUAL" },
        );
        if !ops_equal {
            line.push_str(" (ops differ)");
        }
        if !one_sided.is_empty() {
            line.push_str(&format!(" (ignored one-sided: {})", one_sided.join(", ")));
        }
        if equal && ratio > 1.0 + threshold {
            rep.failures.push(format!(
                "{}: {:+.1}% ns/op regression at equal engine counters (limit {:+.1}%)",
                cur.name,
                pct,
                threshold * 100.0
            ));
            line.push_str("  ** FAIL **");
        } else if !equal {
            line.push_str("  (informational only)");
        }
        rep.lines.push(line);
    }
    for prev in &base.benchmarks {
        if !current.benchmarks.iter().any(|b| b.name == prev.name) {
            rep.lines.push(format!("{}: dropped from current run", prev.name));
        }
    }
    rep
}
