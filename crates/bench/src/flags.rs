//! Progress-engine optimization harnesses: Figs 7–11 (§VIII.A.2).
//!
//! All five scenarios run the nonblocking API only, with and without the
//! relevant reorder flag, exactly as in the paper ("the following tests
//! are all performed with nonblocking synchronizations only, but with and
//! without a flag enabled. All the epochs host a single 1 MB put").

use mpisim_core::{Group, JobConfig, LockKind, Rank, WinInfo};
use mpisim_sim::SimTime;

use crate::series::Recorder;
use crate::table::Table;

const MB: usize = 1 << 20;
const DELAY_US: u64 = 1000;

fn job(n: usize) -> JobConfig {
    JobConfig::all_internode(n)
}

fn cols(flag: &str) -> Vec<String> {
    vec![format!("{flag} off"), format!("{flag} on")]
}

/// Fig 7 — out-of-order GATS access epoch progression with `A_A_A_R`.
/// Rows: punctual target T1's epoch, origin cumulative.
pub fn fig07_aaar_gats() -> Table {
    let mut t = Table::new(
        "Fig 7 — out-of-order GATS access epochs (A_A_A_R)",
        "epoch",
        cols("A_A_A_R"),
        "µs",
    );
    let mut t1 = Vec::new();
    let mut cum = Vec::new();
    for flag in [false, true] {
        let info = if flag { WinInfo::aaar() } else { WinInfo::default() };
        let rec = Recorder::new();
        let r2 = rec.clone();
        mpisim_core::run_job(job(3), move |env| {
            let win = env.win_allocate_with(MB, info).unwrap();
            env.barrier().unwrap();
            let t0 = env.now();
            match env.rank().idx() {
                0 => {
                    env.start(win, Group::single(Rank(1))).unwrap();
                    env.put_synthetic(win, Rank(1), 0, MB).unwrap();
                    let r1 = env.icomplete(win).unwrap();
                    env.start(win, Group::single(Rank(2))).unwrap();
                    env.put_synthetic(win, Rank(2), 0, MB).unwrap();
                    let r2q = env.icomplete(win).unwrap();
                    env.wait(r1).unwrap();
                    env.wait(r2q).unwrap();
                    r2.set("cum", (env.now() - t0).as_micros_f64());
                }
                1 => {
                    env.compute(SimTime::from_micros(DELAY_US));
                    env.post(win, Group::single(Rank(0))).unwrap();
                    env.wait_epoch(win).unwrap();
                }
                _ => {
                    env.post(win, Group::single(Rank(0))).unwrap();
                    env.wait_epoch(win).unwrap();
                    r2.set("t1", (env.now() - t0).as_micros_f64());
                }
            }
            env.barrier().unwrap();
            env.win_free(win).unwrap();
        })
        .unwrap();
        t1.push(rec.get("t1"));
        cum.push(rec.get("cum"));
    }
    t.push("target T1", t1);
    t.push("origin cumulative", cum);
    t
}

/// Fig 8 — out-of-order lock epoch progression with `A_A_A_R`. One row:
/// O1's cumulative latency over its two lock epochs.
pub fn fig08_aaar_lock() -> Table {
    let mut t = Table::new(
        "Fig 8 — out-of-order lock epochs (A_A_A_R)",
        "metric",
        cols("A_A_A_R"),
        "µs",
    );
    let mut cum = Vec::new();
    for flag in [false, true] {
        let info = if flag { WinInfo::aaar() } else { WinInfo::default() };
        let rec = Recorder::new();
        let r2 = rec.clone();
        mpisim_core::run_job(job(4), move |env| {
            let win = env.win_allocate_with(MB, info).unwrap();
            env.barrier().unwrap();
            match env.rank().idx() {
                0 => {
                    // O0 holds T0's lock and works 1000 µs inside the epoch.
                    env.lock(win, Rank(2), LockKind::Exclusive).unwrap();
                    env.put_synthetic(win, Rank(2), 0, MB).unwrap();
                    env.compute(SimTime::from_micros(DELAY_US));
                    env.unlock(win, Rank(2)).unwrap();
                }
                1 => {
                    env.compute(SimTime::from_micros(50));
                    let t0 = env.now();
                    let _ = env.ilock(win, Rank(2), LockKind::Exclusive).unwrap();
                    env.put_synthetic(win, Rank(2), 0, MB).unwrap();
                    let q1 = env.iunlock(win, Rank(2)).unwrap();
                    let _ = env.ilock(win, Rank(3), LockKind::Exclusive).unwrap();
                    env.put_synthetic(win, Rank(3), 0, MB).unwrap();
                    let q2 = env.iunlock(win, Rank(3)).unwrap();
                    env.wait(q1).unwrap();
                    env.wait(q2).unwrap();
                    r2.set("cum", (env.now() - t0).as_micros_f64());
                }
                _ => {}
            }
            env.barrier().unwrap();
            env.win_free(win).unwrap();
        })
        .unwrap();
        cum.push(rec.get("cum"));
    }
    t.push("cumulative O1 epochs (1MB)", cum);
    t
}

/// Fig 9 — `A_A_E_R`: P2 is a target for late P0, then an origin for P1.
pub fn fig09_aaer() -> Table {
    let mut t = Table::new(
        "Fig 9 — out-of-order GATS epochs (A_A_E_R)",
        "epoch",
        cols("A_A_E_R"),
        "µs",
    );
    let mut p1 = Vec::new();
    let mut p2 = Vec::new();
    for flag in [false, true] {
        let info = WinInfo {
            access_after_exposure: flag,
            ..WinInfo::default()
        };
        let rec = Recorder::new();
        let r2 = rec.clone();
        mpisim_core::run_job(job(3), move |env| {
            let win = env.win_allocate_with(MB, info).unwrap();
            env.barrier().unwrap();
            let t0 = env.now();
            match env.rank().idx() {
                0 => {
                    env.compute(SimTime::from_micros(DELAY_US));
                    env.start(win, Group::single(Rank(2))).unwrap();
                    env.put_synthetic(win, Rank(2), 0, MB).unwrap();
                    env.complete(win).unwrap();
                }
                1 => {
                    env.post(win, Group::single(Rank(2))).unwrap();
                    env.wait_epoch(win).unwrap();
                    r2.set("p1", (env.now() - t0).as_micros_f64());
                }
                _ => {
                    let _ = env.ipost(win, Group::single(Rank(0))).unwrap();
                    let q1 = env.iwait(win).unwrap();
                    env.start(win, Group::single(Rank(1))).unwrap();
                    env.put_synthetic(win, Rank(1), 0, MB).unwrap();
                    let q2 = env.icomplete(win).unwrap();
                    env.wait(q1).unwrap();
                    env.wait(q2).unwrap();
                    r2.set("p2", (env.now() - t0).as_micros_f64());
                }
            }
            env.barrier().unwrap();
            env.win_free(win).unwrap();
        })
        .unwrap();
        p1.push(rec.get("p1"));
        p2.push(rec.get("p2"));
    }
    t.push("target P1", p1);
    t.push("P2 (target then origin)", p2);
    t
}

/// Fig 10 — `E_A_E_R`: one target exposes to late O0 then to O1.
pub fn fig10_eaer() -> Table {
    let mut t = Table::new(
        "Fig 10 — out-of-order exposure epochs (E_A_E_R)",
        "epoch",
        cols("E_A_E_R"),
        "µs",
    );
    let mut o1 = Vec::new();
    let mut tgt = Vec::new();
    for flag in [false, true] {
        let info = WinInfo {
            exposure_after_exposure: flag,
            ..WinInfo::default()
        };
        let rec = Recorder::new();
        let r2 = rec.clone();
        mpisim_core::run_job(job(3), move |env| {
            let win = env.win_allocate_with(MB, info).unwrap();
            env.barrier().unwrap();
            let t0 = env.now();
            match env.rank().idx() {
                0 => {
                    env.compute(SimTime::from_micros(DELAY_US));
                    env.start(win, Group::single(Rank(2))).unwrap();
                    env.put_synthetic(win, Rank(2), 0, MB).unwrap();
                    env.complete(win).unwrap();
                }
                1 => {
                    env.start(win, Group::single(Rank(2))).unwrap();
                    env.put_synthetic(win, Rank(2), 0, MB).unwrap();
                    env.complete(win).unwrap();
                    r2.set("o1", (env.now() - t0).as_micros_f64());
                }
                _ => {
                    let _ = env.ipost(win, Group::single(Rank(0))).unwrap();
                    let q1 = env.iwait(win).unwrap();
                    let _ = env.ipost(win, Group::single(Rank(1))).unwrap();
                    let q2 = env.iwait(win).unwrap();
                    env.wait(q1).unwrap();
                    env.wait(q2).unwrap();
                    r2.set("tgt", (env.now() - t0).as_micros_f64());
                }
            }
            env.barrier().unwrap();
            env.win_free(win).unwrap();
        })
        .unwrap();
        o1.push(rec.get("o1"));
        tgt.push(rec.get("tgt"));
    }
    t.push("origin O1", o1);
    t.push("target cumulative", tgt);
    t
}

/// Fig 11 — `E_A_A_R`: P2 is an origin toward late P0, then a target for
/// P1.
pub fn fig11_eaar() -> Table {
    let mut t = Table::new(
        "Fig 11 — out-of-order GATS epochs (E_A_A_R)",
        "epoch",
        cols("E_A_A_R"),
        "µs",
    );
    let mut p1 = Vec::new();
    let mut p2 = Vec::new();
    for flag in [false, true] {
        let info = WinInfo {
            exposure_after_access: flag,
            ..WinInfo::default()
        };
        let rec = Recorder::new();
        let r2 = rec.clone();
        mpisim_core::run_job(job(3), move |env| {
            let win = env.win_allocate_with(MB, info).unwrap();
            env.barrier().unwrap();
            let t0 = env.now();
            match env.rank().idx() {
                0 => {
                    env.compute(SimTime::from_micros(DELAY_US));
                    env.post(win, Group::single(Rank(2))).unwrap();
                    env.wait_epoch(win).unwrap();
                }
                1 => {
                    env.start(win, Group::single(Rank(2))).unwrap();
                    env.put_synthetic(win, Rank(2), 0, MB).unwrap();
                    env.complete(win).unwrap();
                    r2.set("p1", (env.now() - t0).as_micros_f64());
                }
                _ => {
                    env.start(win, Group::single(Rank(0))).unwrap();
                    env.put_synthetic(win, Rank(0), 0, MB).unwrap();
                    let q1 = env.icomplete(win).unwrap();
                    let _ = env.ipost(win, Group::single(Rank(1))).unwrap();
                    let q2 = env.iwait(win).unwrap();
                    env.wait(q1).unwrap();
                    env.wait(q2).unwrap();
                    r2.set("p2", (env.now() - t0).as_micros_f64());
                }
            }
            env.barrier().unwrap();
            env.win_free(win).unwrap();
        })
        .unwrap();
        p1.push(rec.get("p1"));
        p2.push(rec.get("p2"));
    }
    t.push("origin P1", p1);
    t.push("P2 (origin then target)", p2);
    t
}
