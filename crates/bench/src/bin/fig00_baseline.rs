//! Regenerates the §VIII.A baseline observations (latency parity; lock
//! epoch overlap available only in the new design).
fn main() {
    mpisim_bench::emit(&mpisim_bench::micro::fig00_lock_put_latency(), "fig00_latency");
    mpisim_bench::emit(&mpisim_bench::micro::fig00_lock_overlap(), "fig00_overlap");
}
