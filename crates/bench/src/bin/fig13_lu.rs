//! Regenerates Fig 13 (LU decomposition, panels a–d).
//!
//! * default — 1/8-scale matrices (1024², 2048²) on 8–256 ranks;
//! * `--quick` — test scale;
//! * `--paper` — the paper's 8192²/16384² matrices on 64–2048 ranks
//!   (tens of minutes);
//! * `--m <dim>` and `--jobs <n1,n2,...>` — custom sweep.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut opts = if args.iter().any(|a| a == "--paper") {
        mpisim_bench::fig13::Fig13Opts::paper()
    } else if args.iter().any(|a| a == "--quick") {
        mpisim_bench::fig13::Fig13Opts::quick()
    } else {
        mpisim_bench::fig13::Fig13Opts::default()
    };
    if let Some(i) = args.iter().position(|a| a == "--m") {
        opts.matrix_sizes = vec![args[i + 1].parse().expect("--m <dim>")];
    }
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        opts.job_sizes = args[i + 1]
            .split(',')
            .map(|s| s.parse().expect("--jobs n1,n2,..."))
            .collect();
    }
    for (i, t) in mpisim_bench::fig13::run(&opts).iter().enumerate() {
        mpisim_bench::emit(t, &format!("fig13_{i}"));
    }
}
