//! Regenerates Fig 9 (A_A_E_R).
fn main() {
    mpisim_bench::emit(&mpisim_bench::flags::fig09_aaer(), "fig09");
}
