//! Regenerates Fig 7 (A_A_A_R, GATS).
fn main() {
    mpisim_bench::emit(&mpisim_bench::flags::fig07_aaar_gats(), "fig07");
}
