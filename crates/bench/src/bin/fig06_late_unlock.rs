//! Regenerates Fig 6 (Late Unlock).
fn main() {
    mpisim_bench::emit(&mpisim_bench::micro::fig06_late_unlock(), "fig06");
}
