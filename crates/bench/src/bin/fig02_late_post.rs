//! Regenerates Fig 2 (Late Post).
fn main() {
    mpisim_bench::emit(&mpisim_bench::micro::fig02_late_post(), "fig02");
}
