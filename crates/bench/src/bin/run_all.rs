//! Regenerates every table and figure of the paper's evaluation section.
//! Pass `--quick` to shrink the application figures for a fast pass.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    mpisim_bench::emit(&mpisim_bench::micro::fig00_lock_put_latency(), "fig00_latency");
    mpisim_bench::emit(&mpisim_bench::micro::fig00_lock_overlap(), "fig00_overlap");
    mpisim_bench::emit(&mpisim_bench::micro::fig02_late_post(), "fig02");
    mpisim_bench::emit(&mpisim_bench::micro::fig03_late_complete(), "fig03");
    mpisim_bench::emit(&mpisim_bench::micro::fig04_early_fence(), "fig04");
    mpisim_bench::emit(&mpisim_bench::micro::fig05_wait_at_fence(), "fig05");
    mpisim_bench::emit(&mpisim_bench::micro::fig06_late_unlock(), "fig06");
    mpisim_bench::emit(&mpisim_bench::flags::fig07_aaar_gats(), "fig07");
    mpisim_bench::emit(&mpisim_bench::flags::fig08_aaar_lock(), "fig08");
    mpisim_bench::emit(&mpisim_bench::flags::fig09_aaer(), "fig09");
    mpisim_bench::emit(&mpisim_bench::flags::fig10_eaer(), "fig10");
    mpisim_bench::emit(&mpisim_bench::flags::fig11_eaar(), "fig11");
    let f12 = if quick {
        mpisim_bench::fig12::Fig12Opts::quick()
    } else {
        mpisim_bench::fig12::Fig12Opts::default()
    };
    mpisim_bench::emit(&mpisim_bench::fig12::run(&f12), "fig12");
    let f13 = if quick {
        mpisim_bench::fig13::Fig13Opts::quick()
    } else {
        mpisim_bench::fig13::Fig13Opts::default()
    };
    for (i, t) in mpisim_bench::fig13::run(&f13).iter().enumerate() {
        mpisim_bench::emit(t, &format!("fig13_{i}"));
    }
}
