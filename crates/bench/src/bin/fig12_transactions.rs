//! Regenerates Fig 12 (massive unstructured atomic transactions).
//! `--quick` runs a reduced scale; default runs the paper's job sizes.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = if quick {
        mpisim_bench::fig12::Fig12Opts::quick()
    } else {
        mpisim_bench::fig12::Fig12Opts::default()
    };
    mpisim_bench::emit(&mpisim_bench::fig12::run(&opts), "fig12");
}
