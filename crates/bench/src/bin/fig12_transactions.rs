//! Regenerates Fig 12 (massive unstructured atomic transactions).
//! `--quick` runs a reduced scale; `--sizes N[,N...]` restricts the job
//! sizes (e.g. `--sizes 512` for the CI scale smoke's single full-scale
//! point); default runs the paper's job sizes 64–512.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut opts = if quick {
        mpisim_bench::fig12::Fig12Opts::quick()
    } else {
        mpisim_bench::fig12::Fig12Opts::default()
    };
    if let Some(list) = args.iter().position(|a| a == "--sizes").and_then(|i| args.get(i + 1)) {
        opts.job_sizes = list
            .split(',')
            .map(|s| s.trim().parse().unwrap_or_else(|e| panic!("--sizes {s:?}: {e}")))
            .collect();
    }
    mpisim_bench::emit(&mpisim_bench::fig12::run(&opts), "fig12");
}
