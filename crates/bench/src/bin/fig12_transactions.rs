//! Regenerates Fig 12 (massive unstructured atomic transactions).
//! `--quick` runs a reduced scale; `--sizes N[,N...]` restricts the job
//! sizes (e.g. `--sizes 512` for the CI scale smoke's single full-scale
//! point); default runs the paper's job sizes 64–512.
//!
//! `--faults PLAN` (e.g. `--faults light-loss`) replays the figure on the
//! named faulty network with the reliability sublayer armed, then runs
//! the fault-free sweep too and requires both checksum-validation CSVs to
//! be **byte-identical**: retransmits may move the throughput numbers,
//! but not one committed update. Exits non-zero on any divergence.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut opts = if quick {
        mpisim_bench::fig12::Fig12Opts::quick()
    } else {
        mpisim_bench::fig12::Fig12Opts::default()
    };
    if let Some(list) = args.iter().position(|a| a == "--sizes").and_then(|i| args.get(i + 1)) {
        opts.job_sizes = list
            .split(',')
            .map(|s| s.trim().parse().unwrap_or_else(|e| panic!("--sizes {s:?}: {e}")))
            .collect();
    }
    let faults = args
        .iter()
        .position(|a| a == "--faults")
        .map(|i| args.get(i + 1).expect("--faults needs a plan name").as_str());
    if let Some(plan) = faults {
        let (faulted_table, faulted_csv) = mpisim_bench::fig12::run_with(&opts, Some(plan));
        let clean_csv = mpisim_bench::fig12::validation_csv(&opts, None);
        mpisim_bench::emit(&faulted_table, "fig12_faulted");
        if faulted_csv == clean_csv {
            println!(
                "fig12: checksum-validation CSV is byte-identical under fault plan \
                 {plan} ({} rows)",
                faulted_csv.lines().count() - 1
            );
        } else {
            eprintln!(
                "fig12: checksum-validation CSV DIVERGES under fault plan {plan}\n\
                 --- fault-free ---\n{clean_csv}--- {plan} ---\n{faulted_csv}"
            );
            std::process::exit(1);
        }
        return;
    }
    mpisim_bench::emit(&mpisim_bench::fig12::run(&opts), "fig12");
}
