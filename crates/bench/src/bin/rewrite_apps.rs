//! Regenerates `rewrite_apps.csv`: the slack rewriter's engine-measured
//! payoff (blocked sync steps, virtual completion time) over every
//! application IR twin. `--short` runs the reduced CI scale. The
//! harness asserts soundness on every row — both versions E-clean and
//! degradation-free, blocked steps strictly reduced, virtual time not
//! regressed — so a successful exit is itself a validation pass.
fn main() {
    let short = std::env::args().any(|a| a == "--short");
    let deltas = mpisim_bench::rewrite_apps::run(short);
    mpisim_bench::emit(&mpisim_bench::rewrite_apps::table(&deltas), "rewrite_apps");
}
