//! CI perf gate: diff the current trajectory file against the previous
//! PR's and fail on a >10% ns/op regression at equal engine counters
//! (see `mpisim_bench::gate`).
//!
//! Usage: `bench_gate --baseline BENCH_5.json --current BENCH_6.json
//! [--threshold 0.10]`
//!
//! Exit codes: 0 = pass (including a missing baseline, tolerated so the
//! first gated PR bootstraps cleanly), 1 = regression at equal counters,
//! 2 = unreadable/garbled input.

use mpisim_bench::gate::{gate, parse_trajectory, Trajectory};

fn arg(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn load(path: &str) -> Result<Trajectory, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse_trajectory(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(cur_path) = arg(&args, "--current") else {
        eprintln!("bench_gate: --current PATH is required");
        std::process::exit(2);
    };
    let base_path = arg(&args, "--baseline");
    let threshold: f64 = match arg(&args, "--threshold") {
        Some(t) => match t.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("bench_gate: bad --threshold {t:?}");
                std::process::exit(2);
            }
        },
        None => 0.10,
    };

    let current = match load(&cur_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            std::process::exit(2);
        }
    };
    // A missing baseline file is tolerated (vacuous pass); a *present but
    // garbled* baseline is an error — silently skipping it would disarm
    // the gate exactly when the schema drifts.
    let baseline = match &base_path {
        Some(p) if std::path::Path::new(p).exists() => match load(p) {
            Ok(t) => Some(t),
            Err(e) => {
                eprintln!("bench_gate: {e}");
                std::process::exit(2);
            }
        },
        Some(p) => {
            println!("bench_gate: baseline {p} not found, gate passes vacuously");
            None
        }
        None => None,
    };

    let rep = gate(baseline.as_ref(), &current, threshold);
    for line in &rep.lines {
        println!("{line}");
    }
    if !rep.ok() {
        for f in &rep.failures {
            eprintln!("bench_gate FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("bench_gate: pass");
}
