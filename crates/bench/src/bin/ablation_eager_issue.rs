//! Ablation: eager per-target issue vs MVAPICH's wait-for-all-targets.
//!
//! §VIII.B explains why "New" (blocking) beats vanilla MVAPICH: "we issue
//! right away the RMA transfers of any target that becomes available. In
//! comparison, \[MVAPICH\] waits for all internode targets to be ready
//! before issuing communication to any internode target." This ablation
//! isolates exactly that design choice: one origin, several targets, one
//! of them late — how long until each punctual target holds its data?

use std::sync::{Arc, Mutex};

use mpisim_bench::table::Table;
use mpisim_core::{run_job, Group, JobConfig, Rank, SyncStrategy};
use mpisim_sim::SimTime;

const MB: usize = 1 << 20;

fn punctual_target_time(strategy: SyncStrategy, n_targets: usize) -> f64 {
    let t = Arc::new(Mutex::new(0.0f64));
    let t2 = t.clone();
    run_job(
        JobConfig::all_internode(n_targets + 1).with_strategy(strategy),
        move |env| {
            let n = env.n_ranks();
            let win = env.win_allocate(MB).unwrap();
            env.barrier().unwrap();
            let t0 = env.now();
            if env.rank().idx() == 0 {
                env.start(win, Group::new(1..n)).unwrap();
                for r in 1..n {
                    env.put_synthetic(win, Rank(r), 0, MB).unwrap();
                }
                env.complete(win).unwrap();
            } else {
                if env.rank().idx() == n - 1 {
                    env.compute(SimTime::from_micros(1000)); // the late one
                }
                env.post(win, Group::single(Rank(0))).unwrap();
                env.wait_epoch(win).unwrap();
                if env.rank().idx() == 1 {
                    // First punctual target.
                    *t2.lock().unwrap() = (env.now() - t0).as_micros_f64();
                }
            }
            env.barrier().unwrap();
            env.win_free(win).unwrap();
        },
    )
    .unwrap();
    let v = *t.lock().unwrap();
    v
}

fn main() {
    let mut t = Table::new(
        "Ablation — eager per-target issue vs wait-for-all-targets (one target 1000 µs late)",
        "targets",
        vec!["wait-for-all (MVAPICH)".into(), "eager per-target (New)".into()],
        "µs until the first punctual target completes",
    );
    for n_targets in [2usize, 4, 8] {
        let lazy = punctual_target_time(SyncStrategy::LazyBaseline, n_targets);
        let eager = punctual_target_time(SyncStrategy::Redesigned, n_targets);
        t.push(format!("{n_targets}"), vec![lazy, eager]);
    }
    mpisim_bench::emit(&t, "ablation_eager_issue");
}
