//! Regenerates Fig 8 (A_A_A_R, lock).
fn main() {
    mpisim_bench::emit(&mpisim_bench::flags::fig08_aaar_lock(), "fig08");
}
