//! Regenerates Fig 10 (E_A_E_R).
fn main() {
    mpisim_bench::emit(&mpisim_bench::flags::fig10_eaer(), "fig10");
}
