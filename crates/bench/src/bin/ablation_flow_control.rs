//! Ablation: the flow-control ceiling behind the paper's 512-process
//! result (§VIII.B).
//!
//! The paper reports that "an InfiniBand flow control issue prevents the
//! new implementation from scaling beyond 512 processes when there are
//! large numbers of simultaneously pending epochs", collapsing the
//! `A_A_A_R` advantage from 39% (64 procs) to 2% (512 procs). That
//! ceiling is an artifact of finite send credits. This ablation sweeps the
//! per-rank outstanding-message budget at a fixed job size and shows the
//! same collapse: as credits shrink, pending nonblocking epochs stall in
//! the backlog and the out-of-order advantage evaporates.

use mpisim_apps::{expected_checksum, run_transactions, TxConfig, TxMode};
use mpisim_bench::table::Table;
use mpisim_core::{JobConfig, SyncStrategy};

fn throughput(n: usize, rank_credits: u32, mode: TxMode, aaar: bool) -> f64 {
    let cfg = TxConfig {
        txs_per_rank: 200,
        payload: 64,
        slots: 256,
        mode,
        aaar,
        think_time: mpisim_sim::SimTime::ZERO,
        dist: mpisim_apps::TargetDist::Uniform,
    };
    let mut job = JobConfig::new(n).with_strategy(SyncStrategy::Redesigned);
    job.net.rank_credits = rank_credits;
    job.net.channel_credits = rank_credits.min(16);
    let res = run_transactions(job, cfg.clone()).unwrap();
    assert_eq!(res.checksum, expected_checksum(n, &cfg));
    res.tx_per_sec / 1e3
}

fn main() {
    let n = 64;
    let mut t = Table::new(
        format!("Ablation — send-credit budget vs A_A_A_R gain ({n} ranks)"),
        "rank credits",
        vec![
            "blocking".into(),
            "nonblocking + A_A_A_R".into(),
            "gain %".into(),
        ],
        "thousands of transactions / s",
    );
    for credits in [0u32, 16, 8, 4, 2, 1] {
        let b = throughput(n, credits, TxMode::Blocking, false);
        let nb = throughput(n, credits, TxMode::Nonblocking { max_inflight: 64 }, true);
        let label = if credits == 0 {
            "unlimited".to_string()
        } else {
            format!("{credits}")
        };
        t.push(label, vec![b, nb, (nb / b - 1.0) * 100.0]);
    }
    mpisim_bench::emit(&t, "ablation_flow_control");
}
