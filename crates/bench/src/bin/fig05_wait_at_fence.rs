//! Regenerates Fig 5 (Wait at Fence).
fn main() {
    mpisim_bench::emit(&mpisim_bench::micro::fig05_wait_at_fence(), "fig05");
}
