//! Regenerates Fig 4 (Early Fence).
fn main() {
    mpisim_bench::emit(&mpisim_bench::micro::fig04_early_fence(), "fig04");
}
