//! Regenerates Fig 3 (Late Complete).
fn main() {
    mpisim_bench::emit(&mpisim_bench::micro::fig03_late_complete(), "fig03");
}
