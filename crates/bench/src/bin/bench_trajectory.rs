//! Perf-trajectory runner: executes the macro-benchmarks (fence-heavy
//! halo, GATS pipeline, lock_all contention, the internode /
//! reliability-sublayer halo pair, the static-analyzer IR sweep, the
//! slack classify+rewrite sweep, the blocking/relaxed IR pairs for the
//! halo, LU and bank twins, and the 8/64/512/4096 ranks sweep with
//! peak-RSS tracking) and writes `BENCH_10.json`.
//!
//! Usage: `cargo run --release -p mpisim-bench --bin bench_trajectory --
//! [--short] [--ranks-only] [--out PATH]`. `--short` runs CI-smoke
//! scales; `--ranks-only` runs just the ranks sweep (the CI scale-smoke
//! job's budgeted subset); `--out` overrides the output path (default
//! `BENCH_10.json` in the current directory — run from the repo root).

/// Trajectory point: PR 10 made the static layer value-aware (E018) and
/// the slack rewriter cost-modeled. The `lu_gats_ir`/`bank_lockall_ir`
/// pairs price the rewriter's payoff on two more application epoch
/// disciplines next to the existing halo pair.
const PR: u32 = 10;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let short = args.iter().any(|a| a == "--short");
    let ranks_only = args.iter().any(|a| a == "--ranks-only");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("BENCH_{PR}.json"));

    let results = if ranks_only {
        mpisim_bench::macrobench::ranks_sweep_suite(short)
    } else {
        mpisim_bench::macrobench::run_suite(short)
    };
    for r in &results {
        println!(
            "{:>22}  ranks={} ops={:>6}  {:>10.1} ns/op  rss={} KiB  (sweeps={}, ops_issued={}, fifo={}={}) ",
            r.name,
            r.ranks,
            r.ops,
            r.ns_per_op(),
            r.peak_rss_kb,
            r.engine.sweeps,
            r.engine.ops_issued,
            r.engine.fifo_packets,
            r.engine.fifo_drained,
        );
    }
    let json = mpisim_bench::macrobench::trajectory_json(PR, short, &results);
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
