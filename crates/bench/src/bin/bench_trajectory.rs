//! Perf-trajectory runner: executes the macro-benchmarks (fence-heavy
//! halo, GATS pipeline, lock_all contention, the internode /
//! reliability-sublayer halo pair, the static-analyzer IR sweep, the
//! slack classify+rewrite sweep, and the blocking/relaxed IR halo pair)
//! and writes `BENCH_7.json`.
//!
//! Usage: `cargo run --release -p mpisim-bench --bin bench_trajectory --
//! [--short] [--out PATH]`. `--short` runs CI-smoke scales; `--out`
//! overrides the output path (default `BENCH_7.json` in the current
//! directory — run from the repo root).

/// Trajectory point: PR 7 added the synchronization-slack dataflow pass
/// and the slack-guided IR rewriter; the `halo_fence_ir` /
/// `halo_fence_ir_relaxed` pair measures its engine-visible payoff via
/// the new `sync_blocked_steps` counter.
const PR: u32 = 7;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let short = args.iter().any(|a| a == "--short");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("BENCH_{PR}.json"));

    let results = mpisim_bench::macrobench::run_suite(short);
    for r in &results {
        println!(
            "{:>22}  ranks={} ops={:>6}  {:>10.1} ns/op  (sweeps={}, ops_issued={}, fifo={}={}) ",
            r.name,
            r.ranks,
            r.ops,
            r.ns_per_op(),
            r.engine.sweeps,
            r.engine.ops_issued,
            r.engine.fifo_packets,
            r.engine.fifo_drained,
        );
    }
    let json = mpisim_bench::macrobench::trajectory_json(PR, short, &results);
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
