//! Regenerates Fig 11 (E_A_A_R).
fn main() {
    mpisim_bench::emit(&mpisim_bench::flags::fig11_eaar(), "fig11");
}
