//! The three test series of §VIII and shared measurement plumbing.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use mpisim_core::{JobConfig, SyncStrategy};

/// The paper's test series (§VIII): vanilla-MVAPICH-like baseline, the new
/// design driven with blocking calls, and the new design driven with the
/// nonblocking API.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Series {
    /// "MVAPICH": lazy baseline, blocking synchronizations.
    Mvapich,
    /// "New": redesigned engine, blocking synchronizations.
    New,
    /// "New nonblocking": redesigned engine, `i`-routines.
    NewNb,
}

impl Series {
    /// All three, in the paper's plotting order.
    pub const ALL: [Series; 3] = [Series::Mvapich, Series::New, Series::NewNb];

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            Series::Mvapich => "MVAPICH",
            Series::New => "New",
            Series::NewNb => "New nonblocking",
        }
    }

    /// Job configuration for a microbenchmark of `n` ranks (one rank per
    /// node, like the paper's internode microbenchmarks).
    pub fn job(self, n: usize) -> JobConfig {
        let strategy = match self {
            Series::Mvapich => SyncStrategy::LazyBaseline,
            _ => SyncStrategy::Redesigned,
        };
        JobConfig::all_internode(n).with_strategy(strategy)
    }

    /// Whether this series drives epochs through the nonblocking API.
    pub fn nonblocking(self) -> bool {
        matches!(self, Series::NewNb)
    }
}

/// A thread-safe scratchpad for timestamps measured inside rank closures,
/// in microseconds.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Arc<Mutex<BTreeMap<String, f64>>>,
}

impl Recorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Store a value (µs) under `key`.
    pub fn set(&self, key: &str, us: f64) {
        self.inner.lock().unwrap().insert(key.to_string(), us);
    }

    /// Fetch a value.
    pub fn get(&self, key: &str) -> f64 {
        *self
            .inner
            .lock()
            .unwrap()
            .get(key)
            .unwrap_or_else(|| panic!("recorder key {key} missing"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_configs() {
        assert_eq!(Series::Mvapich.label(), "MVAPICH");
        assert_eq!(
            Series::Mvapich.job(2).strategy,
            SyncStrategy::LazyBaseline
        );
        assert_eq!(Series::New.job(2).strategy, SyncStrategy::Redesigned);
        assert!(Series::NewNb.nonblocking());
        assert!(!Series::New.nonblocking());
    }

    #[test]
    fn recorder_roundtrip() {
        let r = Recorder::new();
        r.set("x", 1.5);
        assert_eq!(r.get("x"), 1.5);
    }

    #[test]
    #[should_panic(expected = "missing")]
    fn recorder_missing_key_panics() {
        Recorder::new().get("nope");
    }
}
