//! Rewrite-apps figure: the cost-modeled slack rewriter over every
//! application IR twin.
//!
//! For each kernel in `mpisim_apps::ir_models` (halo, stencil2d, LU,
//! transactions, bank) the harness analyzes the all-blocking twin,
//! applies the sound slack rewriter, executes both versions under the
//! engine, and reports the engine-measured payoff: blocked
//! synchronization steps and virtual completion time, before and after.
//! Every row is checked on the way through — both versions must be
//! E-clean and run degradation-free, any applied rewrite must strictly
//! reduce blocked steps, and virtual time must not regress — so the
//! emitted CSV (`rewrite_apps.csv`) doubles as an end-to-end validation
//! of the static layer's cost model on real workload shapes. The
//! transactions twin is the deliberate negative row: its unlocks all
//! release contended exclusive locks, so the rewriter's contention veto
//! declines every relaxation and the row reports a zero delta with
//! `skipped > 0` — the cost model refusing a rewrite that was measured
//! to regress virtual time.

use mpisim_analyze::{analyze, rewrite};
use mpisim_core::SyncStrategy;

use crate::table::Table;

/// One application twin's before/after measurements.
#[derive(Debug, Clone)]
pub struct AppDelta {
    /// Kernel label.
    pub name: &'static str,
    /// Ranks in the twin.
    pub ranks: usize,
    /// Engine `sync_blocked_steps`, all-blocking twin.
    pub blocked_orig: u64,
    /// Engine `sync_blocked_steps` after the sound rewrite.
    pub blocked_rw: u64,
    /// Virtual completion time (ns), all-blocking twin.
    pub virt_ns_orig: u64,
    /// Virtual completion time (ns) after the sound rewrite.
    pub virt_ns_rw: u64,
    /// Closes relaxed by the rewriter.
    pub relaxed: usize,
    /// Redundant flushes elided.
    pub elided: usize,
    /// Remote flushes localized.
    pub localized: usize,
    /// Over-wide GATS groups shrunk.
    pub shrunk: usize,
    /// Relaxations vetoed by the cost model.
    pub skipped: usize,
}

/// Run every twin through analyze → rewrite → execute-both and collect
/// the deltas. Panics on any soundness violation: a diagnostic on
/// either version, a degraded run, a blocked-steps increase, or a
/// virtual-time regression.
pub fn run(short: bool) -> Vec<AppDelta> {
    let mut out = Vec::new();
    for (name, p) in mpisim_apps::ir_models::suite(short) {
        let diags = analyze(&p);
        assert!(diags.is_empty(), "{name}: twin not E-clean: {diags:?}");
        let (rw, rep) = rewrite(&p);
        assert!(
            rep.changed() || rep.skipped > 0,
            "{name}: rewriter neither changed anything nor vetoed anything"
        );
        let diags = analyze(&rw);
        assert!(diags.is_empty(), "{name}: rewritten twin not E-clean: {diags:?}");

        let (_, r0) = mpisim_check::exec_ir_with(&p, false, 7, SyncStrategy::Redesigned)
            .unwrap_or_else(|e| panic!("{name}: blocking run failed: {e:?}"));
        assert!(r0.is_clean(), "{name}: blocking run degraded: {:?}", r0.degradations);
        let (_, r1) = mpisim_check::exec_ir_with(&rw, false, 7, SyncStrategy::Redesigned)
            .unwrap_or_else(|e| panic!("{name}: rewritten run failed: {e:?}"));
        assert!(r1.is_clean(), "{name}: rewritten run degraded: {:?}", r1.degradations);

        let (s0, s1) = (r0.engine.sync_blocked_steps, r1.engine.sync_blocked_steps);
        if rep.changed() {
            assert!(s1 < s0, "{name}: rewrite did not reduce blocked steps ({s0} -> {s1})");
        } else {
            assert_eq!(s1, s0, "{name}: unchanged program measured differently");
        }
        let (t0, t1) = (r0.final_time, r1.final_time);
        assert!(t1 <= t0, "{name}: rewrite regressed virtual time ({t0:?} -> {t1:?})");

        out.push(AppDelta {
            name,
            ranks: p.n_ranks,
            blocked_orig: s0,
            blocked_rw: s1,
            virt_ns_orig: t0.as_nanos(),
            virt_ns_rw: t1.as_nanos(),
            relaxed: rep.relaxed,
            elided: rep.elided,
            localized: rep.localized,
            shrunk: rep.shrunk,
            skipped: rep.skipped,
        });
    }
    out
}

/// Format the deltas as the `rewrite_apps` table/CSV.
pub fn table(deltas: &[AppDelta]) -> Table {
    let mut t = Table::new(
        "Slack rewriter over the application kernels (blocking IR twin vs sound rewrite)",
        "app",
        vec![
            "ranks".into(),
            "blocked_steps".into(),
            "blocked_steps_rw".into(),
            "blocked_reduction_pct".into(),
            "virt_us".into(),
            "virt_us_rw".into(),
            "relaxed".into(),
            "elided".into(),
            "localized".into(),
            "shrunk".into(),
            "skipped".into(),
        ],
        "engine counters",
    );
    for d in deltas {
        let pct = if d.blocked_orig > 0 {
            100.0 * (d.blocked_orig - d.blocked_rw) as f64 / d.blocked_orig as f64
        } else {
            f64::NAN
        };
        t.push(
            d.name,
            vec![
                d.ranks as f64,
                d.blocked_orig as f64,
                d.blocked_rw as f64,
                pct,
                d.virt_ns_orig as f64 / 1000.0,
                d.virt_ns_rw as f64 / 1000.0,
                d.relaxed as f64,
                d.elided as f64,
                d.localized as f64,
                d.shrunk as f64,
                d.skipped as f64,
            ],
        );
    }
    t
}
