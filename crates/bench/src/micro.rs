//! Microbenchmark harnesses: the §VIII.A baseline observations (we call
//! them "Fig 0") and the five inefficiency-pattern figures (Figs 2–6).

use mpisim_core::{Group, LockKind, Rank};
use mpisim_sim::SimTime;

use crate::series::{Recorder, Series};
use crate::table::Table;

const MB: usize = 1 << 20;
const DELAY_US: u64 = 1000;

fn us(t: SimTime) -> f64 {
    t.as_micros_f64()
}

/// Message sizes used by the size-sweep figures (4 B … 1 MB, ×4 steps —
/// the paper's x-axis).
pub fn size_sweep() -> Vec<usize> {
    (0..=9).map(|i| 4usize << (2 * i)).collect() // 4B, 16B, …, 256KB, 1MB
}

/// Labels like "4B", "64KB", "1MB".
pub fn size_label(bytes: usize) -> String {
    if bytes >= MB {
        format!("{}MB", bytes / MB)
    } else if bytes >= 1024 {
        format!("{}KB", bytes / 1024)
    } else {
        format!("{bytes}B")
    }
}

// ---------------------------------------------------------------------
// Fig 0 — §VIII.A prose: latency parity and overlap observations
// ---------------------------------------------------------------------

/// Epoch latency of a single put inside a lock epoch, per series.
pub fn fig00_lock_put_latency() -> Table {
    let sizes = size_sweep();
    let mut t = Table::new(
        "§VIII.A baseline: lock-epoch put latency (no delays, no late peers)",
        "size",
        Series::ALL.iter().map(|s| s.label().to_string()).collect(),
        "µs",
    );
    for size in sizes {
        let mut row = Vec::new();
        for series in Series::ALL {
            let rec = Recorder::new();
            let r2 = rec.clone();
            mpisim_core::run_job(series.job(2), move |env| {
                let win = env.win_allocate(MB).unwrap();
                env.barrier().unwrap();
                if env.rank().idx() == 0 {
                    let t0 = env.now();
                    env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
                    env.put_synthetic(win, Rank(1), 0, size).unwrap();
                    env.unlock(win, Rank(1)).unwrap();
                    r2.set("lat", (env.now() - t0).as_micros_f64());
                }
                env.barrier().unwrap();
                env.win_free(win).unwrap();
            })
            .unwrap();
            row.push(rec.get("lat"));
        }
        t.push(size_label(size), row);
    }
    t
}

/// Communication/computation overlap inside a lock epoch: epoch length
/// with 300 µs of in-epoch work for a 1 MB put. Full overlap ⇒ ≈ the
/// transfer time; no overlap (lazy baseline) ⇒ work + transfer.
pub fn fig00_lock_overlap() -> Table {
    let mut t = Table::new(
        "§VIII.A baseline: lock-epoch overlap (1 MB put + 300 µs in-epoch work)",
        "metric",
        Series::ALL.iter().map(|s| s.label().to_string()).collect(),
        "µs",
    );
    let mut row = Vec::new();
    for series in Series::ALL {
        let rec = Recorder::new();
        let r2 = rec.clone();
        mpisim_core::run_job(series.job(2), move |env| {
            let win = env.win_allocate(MB).unwrap();
            env.barrier().unwrap();
            if env.rank().idx() == 0 {
                let t0 = env.now();
                env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
                env.put_synthetic(win, Rank(1), 0, MB).unwrap();
                env.compute(SimTime::from_micros(300));
                env.unlock(win, Rank(1)).unwrap();
                r2.set("lat", (env.now() - t0).as_micros_f64());
            }
            env.barrier().unwrap();
            env.win_free(win).unwrap();
        })
        .unwrap();
        row.push(rec.get("lat"));
    }
    t.push("epoch length", row);
    t
}

// ---------------------------------------------------------------------
// Fig 2 — Late Post
// ---------------------------------------------------------------------

/// Fig 2: delay propagation in an origin process whose target posts
/// 1000 µs late, followed by a two-sided transfer. Rows are completion
/// times (from the common start) of the access epoch, the two-sided
/// activity, and the cumulative.
pub fn fig02_late_post() -> Table {
    let mut t = Table::new(
        "Fig 2 — Late Post: delay propagation in the origin",
        "activity",
        Series::ALL.iter().map(|s| s.label().to_string()).collect(),
        "µs (completion time from epoch start)",
    );
    let mut epoch = Vec::new();
    let mut two_sided = Vec::new();
    let mut cumulative = Vec::new();
    for series in Series::ALL {
        let rec = Recorder::new();
        let r2 = rec.clone();
        mpisim_core::run_job(series.job(3), move |env| {
            let win = env.win_allocate(MB).unwrap();
            env.barrier().unwrap();
            let t0 = env.now();
            match env.rank().idx() {
                0 => {
                    // Late target.
                    env.compute(SimTime::from_micros(DELAY_US));
                    env.post(win, Group::single(Rank(2))).unwrap();
                    env.wait_epoch(win).unwrap();
                }
                1 => {
                    // Two-sided peer.
                    let _ = env.recv(Rank(2), 7).unwrap();
                }
                _ => {
                    if series.nonblocking() {
                        env.start(win, Group::single(Rank(0))).unwrap();
                        env.put_synthetic(win, Rank(0), 0, MB).unwrap();
                        let r = env.icomplete(win).unwrap();
                        let ts = env.now();
                        env.isend_synthetic(Rank(1), 7, MB).unwrap_and_wait(env);
                        r2.set("two_sided", us(env.now() - ts));
                        env.wait(r).unwrap();
                        r2.set("epoch", us(env.now() - t0));
                        r2.set("cumulative", us(env.now() - t0));
                    } else {
                        env.start(win, Group::single(Rank(0))).unwrap();
                        env.put_synthetic(win, Rank(0), 0, MB).unwrap();
                        env.complete(win).unwrap();
                        r2.set("epoch", us(env.now() - t0));
                        let ts = env.now();
                        env.isend_synthetic(Rank(1), 7, MB).unwrap_and_wait(env);
                        r2.set("two_sided", us(env.now() - ts));
                        r2.set("cumulative", us(env.now() - t0));
                    }
                }
            }
            env.barrier().unwrap();
            env.win_free(win).unwrap();
        })
        .unwrap();
        epoch.push(rec.get("epoch"));
        two_sided.push(rec.get("two_sided"));
        cumulative.push(rec.get("cumulative"));
    }
    t.push("access epoch", epoch);
    t.push("two-sided", two_sided);
    t.push("cumulative", cumulative);
    t
}

trait WaitHelper {
    fn unwrap_and_wait(self, env: &mpisim_core::RankEnv);
}

impl WaitHelper for Result<mpisim_core::Req, mpisim_core::RmaError> {
    fn unwrap_and_wait(self, env: &mpisim_core::RankEnv) {
        let r = self.unwrap();
        env.wait(r).unwrap();
    }
}

// ---------------------------------------------------------------------
// Fig 3 — Late Complete
// ---------------------------------------------------------------------

/// Fig 3: the origin overlaps 1000 µs of work before closing its access
/// epoch; the table shows the *target-side* epoch length per message size.
pub fn fig03_late_complete() -> Table {
    let mut t = Table::new(
        "Fig 3 — Late Complete: delay propagation to the target",
        "size",
        Series::ALL.iter().map(|s| s.label().to_string()).collect(),
        "µs (target epoch length)",
    );
    for size in size_sweep() {
        let mut row = Vec::new();
        for series in Series::ALL {
            let rec = Recorder::new();
            let r2 = rec.clone();
            mpisim_core::run_job(series.job(2), move |env| {
                let win = env.win_allocate(MB).unwrap();
                env.barrier().unwrap();
                let t0 = env.now();
                if env.rank().idx() == 0 {
                    env.start(win, Group::single(Rank(1))).unwrap();
                    env.put_synthetic(win, Rank(1), 0, size).unwrap();
                    if series.nonblocking() {
                        // Fig 1b: close early, overlap the work after.
                        let r = env.icomplete(win).unwrap();
                        env.compute(SimTime::from_micros(DELAY_US));
                        env.wait(r).unwrap();
                    } else {
                        // Fig 1a scenario 3: overlap inside the epoch.
                        env.compute(SimTime::from_micros(DELAY_US));
                        env.complete(win).unwrap();
                    }
                } else {
                    env.post(win, Group::single(Rank(0))).unwrap();
                    env.wait_epoch(win).unwrap();
                    r2.set("epoch", us(env.now() - t0));
                }
                env.barrier().unwrap();
                env.win_free(win).unwrap();
            })
            .unwrap();
            row.push(rec.get("epoch"));
        }
        t.push(size_label(size), row);
    }
    t
}

// ---------------------------------------------------------------------
// Fig 4 — Early Fence
// ---------------------------------------------------------------------

/// Fig 4: cumulative latency, at the target, of a closing fence plus
/// 1000 µs of post-epoch work, for 256 KB and 1 MB puts.
pub fn fig04_early_fence() -> Table {
    let mut t = Table::new(
        "Fig 4 — Early Fence: communication latency propagation to the target",
        "size",
        Series::ALL.iter().map(|s| s.label().to_string()).collect(),
        "µs (epoch + subsequent work, cumulative)",
    );
    for size in [256 * 1024, MB] {
        let mut row = Vec::new();
        for series in Series::ALL {
            let rec = Recorder::new();
            let r2 = rec.clone();
            mpisim_core::run_job(series.job(2), move |env| {
                let win = env.win_allocate(MB).unwrap();
                env.barrier().unwrap();
                env.fence(win).unwrap(); // opening fence
                let t0 = env.now();
                if env.rank().idx() == 0 {
                    env.put_synthetic(win, Rank(1), 0, size).unwrap();
                    env.fence(win).unwrap();
                } else if series.nonblocking() {
                    let r = env.ifence(win).unwrap();
                    env.compute(SimTime::from_micros(DELAY_US));
                    env.wait(r).unwrap();
                    r2.set("cum", us(env.now() - t0));
                } else {
                    env.fence(win).unwrap();
                    env.compute(SimTime::from_micros(DELAY_US));
                    r2.set("cum", us(env.now() - t0));
                }
                env.barrier().unwrap();
                env.win_free(win).unwrap();
            })
            .unwrap();
            row.push(rec.get("cum"));
        }
        t.push(size_label(size), row);
    }
    t
}

// ---------------------------------------------------------------------
// Fig 5 — Wait at Fence
// ---------------------------------------------------------------------

/// Fig 5: the origin delays its closing fence by 1000 µs of work; the
/// table shows the target's epoch length per message size.
pub fn fig05_wait_at_fence() -> Table {
    let mut t = Table::new(
        "Fig 5 — Wait at Fence: delay propagation to the target",
        "size",
        Series::ALL.iter().map(|s| s.label().to_string()).collect(),
        "µs (target epoch length)",
    );
    for size in size_sweep() {
        let mut row = Vec::new();
        for series in Series::ALL {
            let rec = Recorder::new();
            let r2 = rec.clone();
            mpisim_core::run_job(series.job(2), move |env| {
                let win = env.win_allocate(MB).unwrap();
                env.barrier().unwrap();
                env.fence(win).unwrap();
                let t0 = env.now();
                if env.rank().idx() == 0 {
                    env.put_synthetic(win, Rank(1), 0, size).unwrap();
                    if series.nonblocking() {
                        let r = env.ifence(win).unwrap();
                        env.compute(SimTime::from_micros(DELAY_US));
                        env.wait(r).unwrap();
                    } else {
                        env.compute(SimTime::from_micros(DELAY_US));
                        env.fence(win).unwrap();
                    }
                } else {
                    env.fence(win).unwrap();
                    r2.set("epoch", us(env.now() - t0));
                }
                env.barrier().unwrap();
                env.win_free(win).unwrap();
            })
            .unwrap();
            row.push(rec.get("epoch"));
        }
        t.push(size_label(size), row);
    }
    t
}

// ---------------------------------------------------------------------
// Fig 6 — Late Unlock
// ---------------------------------------------------------------------

/// Fig 6: two origins lock the same target exclusively; the first works
/// 1000 µs before unlocking. Rows: first lock epoch (O0), second (O1).
pub fn fig06_late_unlock() -> Table {
    let mut t = Table::new(
        "Fig 6 — Late Unlock: delay propagation to a subsequent lock requester",
        "epoch",
        Series::ALL.iter().map(|s| s.label().to_string()).collect(),
        "µs (epoch length)",
    );
    let mut first = Vec::new();
    let mut second = Vec::new();
    for series in Series::ALL {
        let rec = Recorder::new();
        let r2 = rec.clone();
        mpisim_core::run_job(series.job(3), move |env| {
            let win = env.win_allocate(MB).unwrap();
            env.barrier().unwrap();
            match env.rank().idx() {
                0 => {
                    let t0 = env.now();
                    if series.nonblocking() {
                        let _ = env.ilock(win, Rank(2), LockKind::Exclusive).unwrap();
                        env.put_synthetic(win, Rank(2), 0, MB).unwrap();
                        let r = env.iunlock(win, Rank(2)).unwrap();
                        env.compute(SimTime::from_micros(DELAY_US));
                        env.wait(r).unwrap();
                    } else {
                        env.lock(win, Rank(2), LockKind::Exclusive).unwrap();
                        env.put_synthetic(win, Rank(2), 0, MB).unwrap();
                        env.compute(SimTime::from_micros(DELAY_US));
                        env.unlock(win, Rank(2)).unwrap();
                    }
                    r2.set("first", us(env.now() - t0));
                }
                1 => {
                    // Ensure O0 issues its lock first.
                    env.compute(SimTime::from_micros(50));
                    let t0 = env.now();
                    if series.nonblocking() {
                        let _ = env.ilock(win, Rank(2), LockKind::Exclusive).unwrap();
                        env.put_synthetic(win, Rank(2), 0, MB).unwrap();
                        let r = env.iunlock(win, Rank(2)).unwrap();
                        env.wait(r).unwrap();
                    } else {
                        env.lock(win, Rank(2), LockKind::Exclusive).unwrap();
                        env.put_synthetic(win, Rank(2), 0, MB).unwrap();
                        env.unlock(win, Rank(2)).unwrap();
                    }
                    r2.set("second", us(env.now() - t0));
                }
                _ => {}
            }
            env.barrier().unwrap();
            env.win_free(win).unwrap();
        })
        .unwrap();
        first.push(rec.get("first"));
        second.push(rec.get("second"));
    }
    t.push("first lock (O0)", first);
    t.push("second lock (O1)", second);
    t
}
