//! Fig 13 — LU decomposition: overall time and communication share vs job
//! size, for two matrix sizes and the three series.

use mpisim_apps::{run_lu, LuConfig, LuMode, LuSync};
use mpisim_core::{JobConfig, SyncStrategy};

use crate::table::Table;

/// Harness scale.
#[derive(Clone, Debug)]
pub struct Fig13Opts {
    /// Matrix dimensions. The paper uses 8192 and 16384.
    pub matrix_sizes: Vec<usize>,
    /// Job sizes. The paper sweeps 64…2048.
    pub job_sizes: Vec<usize>,
    /// Modeled per-flop cost, ns (see EXPERIMENTS.md calibration).
    pub t_flop_ns: f64,
    /// Ranks per node.
    pub cores_per_node: usize,
}

impl Default for Fig13Opts {
    fn default() -> Self {
        // Default scale: 1/8 of the paper's matrix dimension with the job
        // sweep shifted accordingly, preserving the rows-per-rank and
        // comm/compute ratios that shape the curves. `--paper` restores
        // the full scale.
        Fig13Opts {
            matrix_sizes: vec![1024, 2048],
            job_sizes: vec![8, 16, 32, 64, 128, 256],
            t_flop_ns: 30.0,
            cores_per_node: 16,
        }
    }
}

impl Fig13Opts {
    /// The paper's full scale (minutes of runtime).
    pub fn paper() -> Self {
        Fig13Opts {
            matrix_sizes: vec![8192, 16384],
            job_sizes: vec![64, 128, 256, 512, 1024, 2048],
            t_flop_ns: 30.0,
            cores_per_node: 16,
        }
    }

    /// A fast configuration for tests/CI.
    pub fn quick() -> Self {
        Fig13Opts {
            matrix_sizes: vec![256],
            job_sizes: vec![4, 8, 16],
            t_flop_ns: 30.0,
            cores_per_node: 4,
        }
    }
}

fn series() -> Vec<(&'static str, SyncStrategy, LuSync)> {
    vec![
        ("MVAPICH", SyncStrategy::LazyBaseline, LuSync::Blocking),
        ("New", SyncStrategy::Redesigned, LuSync::Blocking),
        ("New nonblocking", SyncStrategy::Redesigned, LuSync::Nonblocking),
    ]
}

/// Run one matrix size; returns (overall-time table in seconds, comm-% table),
/// i.e. the (a)/(c) and (b)/(d) panels of Fig 13.
pub fn run_matrix(opts: &Fig13Opts, m: usize) -> (Table, Table) {
    let mut times = Table::new(
        format!("Fig 13 — LU overall time; matrix {m} x {m}"),
        "processes",
        series().iter().map(|s| s.0.to_string()).collect(),
        "seconds (virtual)",
    );
    let mut comm = Table::new(
        format!("Fig 13 — LU communication time share; matrix {m} x {m}"),
        "processes",
        series().iter().map(|s| s.0.to_string()).collect(),
        "% of overall time",
    );
    for &n in &opts.job_sizes {
        if n > m {
            continue;
        }
        let mut trow = Vec::new();
        let mut crow = Vec::new();
        for (_, strategy, sync) in series() {
            let mut job = JobConfig::new(n).with_strategy(strategy);
            job.cores_per_node = opts.cores_per_node;
            let cfg = LuConfig {
                m,
                mode: LuMode::Modeled,
                sync,
                t_flop_ns: opts.t_flop_ns,
            };
            let res = run_lu(job, cfg).expect("LU run failed");
            trow.push(res.total_time.as_secs_f64());
            crow.push(res.comm_fraction * 100.0);
        }
        times.push(format!("{n}"), trow);
        comm.push(format!("{n}"), crow);
    }
    (times, comm)
}

/// Run every panel of Fig 13.
pub fn run(opts: &Fig13Opts) -> Vec<Table> {
    let mut out = Vec::new();
    for &m in &opts.matrix_sizes {
        let (a, b) = run_matrix(opts, m);
        out.push(a);
        out.push(b);
    }
    out
}
