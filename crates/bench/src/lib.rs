//! # mpisim-bench — figure-regeneration harnesses
//!
//! One module (and one binary under `src/bin/`) per table/figure of the
//! paper's evaluation (§VIII):
//!
//! | paper | module / binary |
//! |---|---|
//! | §VIII.A prose (latency/overlap parity) | [`micro::fig00_lock_put_latency`], `fig00_baseline` |
//! | Fig 2 — Late Post | [`micro::fig02_late_post`], `fig02_late_post` |
//! | Fig 3 — Late Complete | [`micro::fig03_late_complete`], `fig03_late_complete` |
//! | Fig 4 — Early Fence | [`micro::fig04_early_fence`], `fig04_early_fence` |
//! | Fig 5 — Wait at Fence | [`micro::fig05_wait_at_fence`], `fig05_wait_at_fence` |
//! | Fig 6 — Late Unlock | [`micro::fig06_late_unlock`], `fig06_late_unlock` |
//! | Fig 7 — A_A_A_R (GATS) | [`flags::fig07_aaar_gats`], `fig07_aaar_gats` |
//! | Fig 8 — A_A_A_R (lock) | [`flags::fig08_aaar_lock`], `fig08_aaar_lock` |
//! | Fig 9 — A_A_E_R | [`flags::fig09_aaer`], `fig09_aaer` |
//! | Fig 10 — E_A_E_R | [`flags::fig10_eaer`], `fig10_eaer` |
//! | Fig 11 — E_A_A_R | [`flags::fig11_eaar`], `fig11_eaar` |
//! | Fig 12 — massive transactions | [`fig12`], `fig12_transactions` |
//! | Fig 13 — LU decomposition | [`fig13`], `fig13_lu` |
//!
//! `run_all` regenerates everything in sequence. All numbers are virtual
//! time on the calibrated cluster model; EXPERIMENTS.md records
//! paper-vs-measured for each figure.
//!
//! [`macrobench`] is different: it measures *host* wall-clock per RMA
//! operation across three engine-stressing workloads, and its
//! `bench_trajectory` binary writes `BENCH_<pr>.json` at the repo root —
//! the PR-over-PR perf trajectory CI archives for regression tracking.

#![warn(missing_docs)]

pub mod fig12;
pub mod fig13;
pub mod flags;
pub mod gate;
pub mod macrobench;
pub mod micro;
pub mod rewrite_apps;
pub mod series;
pub mod table;

pub use series::{Recorder, Series};
pub use table::Table;

/// Emit a table to stdout and, if `csv_dir` is set (env `MPISIM_CSV_DIR`),
/// also write `<dir>/<slug>.csv`.
pub fn emit(t: &Table, slug: &str) {
    println!("{t}");
    if let Ok(dir) = std::env::var("MPISIM_CSV_DIR") {
        let path = std::path::Path::new(&dir).join(format!("{slug}.csv"));
        if let Err(e) = std::fs::create_dir_all(&dir)
            .and_then(|_| std::fs::write(&path, t.to_csv()))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}
